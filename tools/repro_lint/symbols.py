"""Pass 1 of the whole-program analyzer: per-module symbol extraction.

For every source file this module derives a :class:`ModuleInfo` — the
module's dotted name, its import edges (absolute *and* relative forms
resolved against the package context), a symbol table of top-level
functions/classes/aliases, and one :class:`FunctionInfo` per function or
method carrying the *facts* the graph rules consume: best-effort resolved
call sites, RNG-taint sites, blocking-call sites and process-pool submit
sites.

Everything extracted here is plain data (strings/ints/bools), so the
assembled project model serializes to JSON and can be cached between runs
(see :mod:`tools.repro_lint.graph`).  Resolution is deliberately
best-effort: anything dynamic (``getattr`` chains, call results, locals of
unknown type) degrades to ``kind="unknown"`` or ``kind="dynamic"`` and is
never an error — the graph rules treat unknown as "not provably bad".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

#: Resolved dotted names whose call makes ambient-RNG taint (lowercase
#: ``numpy.random.*`` is matched by prefix; these are the exact extras).
_SANCTIONED_RNG_MODULE = "repro.util.rng"

#: Resolved dotted names considered blocking inside ``async def`` bodies.
BLOCKING_CALLS = {
    "time.sleep": "time.sleep() blocks the event loop",
    "subprocess.run": "synchronous subprocess.run()",
    "subprocess.call": "synchronous subprocess.call()",
    "subprocess.check_call": "synchronous subprocess.check_call()",
    "subprocess.check_output": "synchronous subprocess.check_output()",
    "subprocess.Popen": "synchronous subprocess.Popen()",
    "os.system": "synchronous os.system()",
    "os.waitpid": "synchronous os.waitpid()",
    "socket.create_connection": "synchronous socket.create_connection()",
    "urllib.request.urlopen": "synchronous urllib.request.urlopen()",
}

_POOL_DOTTED = "concurrent.futures.ProcessPoolExecutor"
_PARTIAL_DOTTED = "functools.partial"


@dataclass
class CallSite:
    """One call expression inside a function body."""

    line: int
    col: int
    #: Provisional dotted target ("repro.mining.rules.generate_rules",
    #: "numpy.searchsorted", ...) or None when unresolvable.
    target: Optional[str]
    #: "project-ish" (rooted in a local symbol or import), "dynamic"
    #: (getattr/call-result receiver), "lambda", or "unknown".
    kind: str

    def to_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col,
                "target": self.target, "kind": self.kind}


@dataclass
class FactSite:
    """One rule-relevant site (taint / blocking / submit) with a reason."""

    line: int
    col: int
    what: str
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col,
                "what": self.what, "detail": self.detail}


@dataclass
class FunctionInfo:
    """Facts about one function, method or nested function."""

    qualname: str
    name: str
    module: str
    cls: Optional[str]
    line: int
    col: int
    end_line: int
    is_async: bool
    is_public: bool
    calls: list[CallSite] = field(default_factory=list)
    rng_taints: list[FactSite] = field(default_factory=list)
    blocking: list[FactSite] = field(default_factory=list)
    submits: list[FactSite] = field(default_factory=list)
    #: Filled in by ProjectModel.finalize(): qualnames of project functions
    #: this function provably calls.
    resolved_callees: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname, "name": self.name,
            "module": self.module, "cls": self.cls,
            "line": self.line, "col": self.col, "end_line": self.end_line,
            "is_async": self.is_async, "is_public": self.is_public,
            "calls": [c.to_dict() for c in self.calls],
            "rng_taints": [s.to_dict() for s in self.rng_taints],
            "blocking": [s.to_dict() for s in self.blocking],
            "submits": [s.to_dict() for s in self.submits],
            "resolved_callees": list(self.resolved_callees),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FunctionInfo":
        fn = cls(
            qualname=d["qualname"], name=d["name"], module=d["module"],
            cls=d["cls"], line=d["line"], col=d["col"],
            end_line=d["end_line"], is_async=d["is_async"],
            is_public=d["is_public"],
        )
        fn.calls = [CallSite(**c) for c in d["calls"]]
        fn.rng_taints = [FactSite(**s) for s in d["rng_taints"]]
        fn.blocking = [FactSite(**s) for s in d["blocking"]]
        fn.submits = [FactSite(**s) for s in d["submits"]]
        fn.resolved_callees = list(d["resolved_callees"])
        return fn


@dataclass
class ImportEdge:
    """One import statement binding this module to another."""

    target: str  # absolute dotted module (best effort)
    line: int
    col: int
    typing_only: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {"target": self.target, "line": self.line,
                "col": self.col, "typing_only": self.typing_only}


@dataclass
class ModuleInfo:
    """Symbol table + facts for one source file."""

    name: str
    path: str
    package: str  # top-level package ("repro", "tools", "tests", ...)
    imports: list[ImportEdge] = field(default_factory=list)
    #: local name -> absolute dotted target, from import statements.
    bindings: dict[str, str] = field(default_factory=dict)
    #: module-level ``alias = other`` assignments (dotted or local target).
    aliases: dict[str, str] = field(default_factory=dict)
    #: top-level function name -> qualname.
    functions: dict[str, str] = field(default_factory=dict)
    #: class name -> {method name -> qualname}.
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: every FunctionInfo in the module, keyed by qualname.
    function_infos: dict[str, FunctionInfo] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "path": self.path, "package": self.package,
            "imports": [e.to_dict() for e in self.imports],
            "bindings": dict(self.bindings),
            "aliases": dict(self.aliases),
            "functions": dict(self.functions),
            "classes": {k: dict(v) for k, v in self.classes.items()},
            "function_infos": {
                q: f.to_dict() for q, f in self.function_infos.items()
            },
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ModuleInfo":
        mod = cls(name=d["name"], path=d["path"], package=d["package"])
        mod.imports = [ImportEdge(**e) for e in d["imports"]]
        mod.bindings = dict(d["bindings"])
        mod.aliases = dict(d["aliases"])
        mod.functions = dict(d["functions"])
        mod.classes = {k: dict(v) for k, v in d["classes"].items()}
        mod.function_infos = {
            q: FunctionInfo.from_dict(f)
            for q, f in d["function_infos"].items()
        }
        return mod


def module_name_for(path: Path) -> str:
    """Dotted module name, found by walking up through ``__init__.py``s.

    ``src/repro/bgl/cmcs.py`` -> ``repro.bgl.cmcs`` (``src`` has no
    ``__init__.py``, so the walk stops there); a loose script resolves to
    its bare stem.  This handles the src layout, ``tools``/``tests``
    packages and throwaway temp trees uniformly.
    """
    resolved = path if path.is_absolute() else Path.cwd() / path
    parts: list[str] = [] if path.stem == "__init__" else [path.stem]
    d = resolved.parent
    while (d / "__init__.py").exists() and d.name:
        parts.insert(0, d.name)
        parent = d.parent
        if parent == d:
            break
        d = parent
    return ".".join(parts) if parts else path.stem


def _is_typing_guard(test: ast.expr) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class _ModuleExtractor(ast.NodeVisitor):
    """Single AST walk populating a :class:`ModuleInfo`."""

    def __init__(self, mod: ModuleInfo) -> None:
        self.mod = mod
        self._typing_depth = 0
        # Stack of (FunctionInfo | None, nested-def-name set, class name).
        self._func_stack: list[FunctionInfo] = []
        self._class_stack: list[str] = []
        # Names of process-pool locals inside the current function.
        self._pool_names: list[set[str]] = []
        self._import_seen: set[tuple[str, int, int, bool]] = set()

    # -- imports ------------------------------------------------------- #

    def _add_import(self, target: str, node: ast.stmt) -> None:
        """Record one import edge, deduping multi-alias statements
        (``from x import a, b`` is one edge to ``x``, not two)."""
        typing_only = self._typing_depth > 0
        key = (target, node.lineno, node.col_offset, typing_only)
        if key in self._import_seen:
            return
        self._import_seen.add(key)
        self.mod.imports.append(ImportEdge(
            target=target, line=node.lineno, col=node.col_offset,
            typing_only=typing_only,
        ))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.mod.bindings.setdefault(local, target)
            self._add_import(alias.name, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_from_base(node)
        if base is None:
            return
        for alias in node.names:
            if alias.name == "*":
                self._add_import(base, node)
                continue
            local = alias.asname or alias.name
            self.mod.bindings.setdefault(local, f"{base}.{alias.name}")
            self._add_import(base, node)
        self.generic_visit(node)

    def _resolve_from_base(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted base of a ``from X import ...`` statement."""
        if node.level == 0:
            return node.module
        # Relative import: climb from this module's own package.
        own = self.mod.name.split(".")
        # A module's package is itself for __init__ files; ModuleInfo.name
        # already encodes that ("repro.bgl" for bgl/__init__.py), so climb
        # ``level`` steps from the containing package.
        if self.mod.path.endswith("__init__.py"):
            pkg_parts = own
        else:
            pkg_parts = own[:-1]
        up = node.level - 1
        if up > len(pkg_parts):
            return None  # escapes the known tree; degrade to unknown
        base_parts = pkg_parts[: len(pkg_parts) - up]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    # -- structure ----------------------------------------------------- #

    def visit_If(self, node: ast.If) -> None:
        if _is_typing_guard(node.test):
            self._typing_depth += 1
            for child in node.body:
                self.visit(child)
            self._typing_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._func_stack and not self._class_stack:
            self.mod.classes.setdefault(node.name, {})
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        # Module-level ``alias = name_or_dotted`` (callable re-binding).
        if not self._func_stack and not self._class_stack:
            target_dotted = _dotted_of(node.value)
            if target_dotted is not None:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        self.mod.aliases[tgt.id] = target_dotted
        self._track_pool_assign(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node, is_async=True)

    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, *, is_async: bool
    ) -> None:
        cls = self._class_stack[-1] if self._class_stack else None
        if self._func_stack:
            parent = self._func_stack[-1]
            qualname = f"{parent.qualname}.{node.name}"
        elif cls is not None:
            qualname = f"{self.mod.name}.{cls}.{node.name}"
        else:
            qualname = f"{self.mod.name}.{node.name}"
        info = FunctionInfo(
            qualname=qualname, name=node.name, module=self.mod.name,
            cls=cls if not self._func_stack else None,
            line=node.lineno, col=node.col_offset,
            end_line=getattr(node, "end_lineno", node.lineno) or node.lineno,
            is_async=is_async,
            is_public=not node.name.startswith("_") or node.name == "__init__",
        )
        self.mod.function_infos[qualname] = info
        if not self._func_stack:
            if cls is not None:
                self.mod.classes.setdefault(cls, {})[node.name] = qualname
            else:
                self.mod.functions.setdefault(node.name, qualname)
        self._func_stack.append(info)
        self._pool_names.append(set())
        for child in node.body:
            self.visit(child)
        self._pool_names.pop()
        self._func_stack.pop()

    # -- calls and facts ----------------------------------------------- #

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            call = item.context_expr
            if (
                isinstance(call, ast.Call)
                and self._resolve_dotted(call.func) == _POOL_DOTTED
                and isinstance(item.optional_vars, ast.Name)
                and self._pool_names
            ):
                self._pool_names[-1].add(item.optional_vars.id)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self.generic_visit(node)

    def _track_pool_assign(self, node: ast.Assign) -> None:
        if (
            self._pool_names
            and isinstance(node.value, ast.Call)
            and self._resolve_dotted(node.value.func) == _POOL_DOTTED
        ):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self._pool_names[-1].add(tgt.id)

    def visit_Call(self, node: ast.Call) -> None:
        fn = self._func_stack[-1] if self._func_stack else None
        dotted = self._resolve_dotted(node.func)
        kind = self._call_kind(node.func, dotted)
        if fn is not None:
            fn.calls.append(CallSite(
                line=node.lineno, col=node.col_offset,
                target=dotted, kind=kind,
            ))
            self._extract_rng_taint(fn, node, dotted)
            self._extract_blocking(fn, node, dotted)
            self._extract_submit(fn, node, dotted)
        self.generic_visit(node)

    def _call_kind(self, func: ast.expr, dotted: Optional[str]) -> str:
        if dotted is not None:
            return "resolved"
        if isinstance(func, ast.Lambda):
            return "lambda"
        if isinstance(func, ast.Call):
            # ``getattr(obj, name)(...)`` and friends: dynamic dispatch.
            return "dynamic"
        return "unknown"

    def _resolve_dotted(self, node: ast.expr) -> Optional[str]:
        """Flatten ``a.b.c`` to an absolute dotted name (best effort).

        Resolution order for the root name: enclosing nested defs, the
        ``self`` receiver (one level), module functions/classes/aliases,
        then import bindings.  Unresolvable roots yield ``None``.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = cur.id
        parts.reverse()

        # self.method() inside a class body -> module.Class.method.
        if root == "self" and self._class_stack and len(parts) == 1:
            cls = self._class_stack[-1]
            return f"{self.mod.name}.{cls}.{parts[0]}"
        if root == "self":
            return None

        base = self._lookup_root(root)
        if base is None:
            return None
        return ".".join([base] + parts) if parts else base

    def _lookup_root(self, root: str) -> Optional[str]:
        # Nested function defined in an enclosing scope of this function.
        for fn in reversed(self._func_stack):
            nested = f"{fn.qualname}.{root}"
            if nested in self.mod.function_infos:
                return nested
        if root in self.mod.functions:
            return self.mod.functions[root]
        if root in self.mod.classes:
            return f"{self.mod.name}.{root}"
        if root in self.mod.aliases:
            alias_target = self.mod.aliases[root]
            return self._chase_alias(alias_target)
        if root in self.mod.bindings:
            return self.mod.bindings[root]
        return None

    def _chase_alias(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        base = (
            self.mod.functions.get(head)
            or (f"{self.mod.name}.{head}" if head in self.mod.classes else None)
            or self.mod.bindings.get(head)
        )
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base

    # RL011 facts: un-threaded RNG creation / ambient randomness.
    def _extract_rng_taint(
        self, fn: FunctionInfo, node: ast.Call, dotted: Optional[str]
    ) -> None:
        if self.mod.name.startswith(_SANCTIONED_RNG_MODULE):
            return  # the sanctioned wrapper's own internals are exempt
        if dotted is None:
            return
        if dotted.startswith("numpy.random."):
            leaf = dotted.rsplit(".", 1)[1]
            if leaf[:1].islower():
                fn.rng_taints.append(FactSite(
                    line=node.lineno, col=node.col_offset,
                    what="ambient", detail=f"{dotted}()",
                ))
            return
        if dotted == "random" or dotted.startswith("random."):
            fn.rng_taints.append(FactSite(
                line=node.lineno, col=node.col_offset,
                what="ambient", detail=f"{dotted}()",
            ))
            return
        if dotted == f"{_SANCTIONED_RNG_MODULE}.as_generator":
            if self._seed_arg_is_fresh(node):
                fn.rng_taints.append(FactSite(
                    line=node.lineno, col=node.col_offset,
                    what="fresh-entropy",
                    detail="as_generator() without seed material",
                ))

    @staticmethod
    def _seed_arg_is_fresh(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "seed":
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is None
                )
            if kw.arg is None:
                return False  # **kwargs: cannot tell, assume threaded
        if not node.args:
            return True
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None

    # RL013 facts: blocking calls (resolved + heuristic .acquire()).
    def _extract_blocking(
        self, fn: FunctionInfo, node: ast.Call, dotted: Optional[str]
    ) -> None:
        if dotted in BLOCKING_CALLS:
            fn.blocking.append(FactSite(
                line=node.lineno, col=node.col_offset,
                what=dotted or "", detail=BLOCKING_CALLS[dotted],
            ))
            return
        if dotted is None and isinstance(node.func, ast.Attribute):
            if node.func.attr == "acquire" and not node.args and not node.keywords:
                fn.blocking.append(FactSite(
                    line=node.lineno, col=node.col_offset,
                    what="lock.acquire",
                    detail=".acquire() without a timeout",
                ))
            return
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "open"
            and "open" not in self.mod.bindings
            and self._lookup_root("open") is None
        ):
            fn.blocking.append(FactSite(
                line=node.lineno, col=node.col_offset,
                what="open", detail="synchronous file I/O via open()",
            ))

    # RL012 facts: callables crossing a process boundary.
    def _extract_submit(
        self, fn: FunctionInfo, node: ast.Call, dotted: Optional[str]
    ) -> None:
        # (expr, role, is_callable_position): data positions (initargs,
        # submit arguments) may legitimately carry instance attributes —
        # only genuinely unpicklable lambdas/closures are flagged there.
        candidates: list[tuple[ast.expr, str, bool]] = []
        if dotted == _POOL_DOTTED:
            for kw in node.keywords:
                if kw.arg == "initializer":
                    candidates.append((kw.value, "initializer", True))
                elif kw.arg == "initargs" and isinstance(
                    kw.value, (ast.Tuple, ast.List)
                ):
                    for elt in kw.value.elts:
                        candidates.append((elt, "initargs element", False))
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and isinstance(node.func.value, ast.Name)
            and self._pool_names
            and node.func.value.id in self._pool_names[-1]
        ):
            if node.args:
                candidates.append((node.args[0], "submit callable", True))
            for arg in node.args[1:]:
                if isinstance(arg, ast.Lambda):
                    candidates.append((arg, "submit argument", False))
        for expr, role, callable_position in candidates:
            what = self._classify_boundary_callable(expr)
            if what == "bound_method" and not callable_position:
                continue
            if what is not None:
                fn.submits.append(FactSite(
                    line=expr.lineno, col=expr.col_offset,
                    what=what, detail=role,
                ))

    def _classify_boundary_callable(self, expr: ast.expr) -> Optional[str]:
        """"lambda" / "closure" / "bound_method" when provably unsafe."""
        if isinstance(expr, ast.Lambda):
            return "lambda"
        if (
            isinstance(expr, ast.Call)
            and self._resolve_dotted(expr.func) == _PARTIAL_DOTTED
            and expr.args
        ):
            return self._classify_boundary_callable(expr.args[0])
        if isinstance(expr, ast.Name):
            for fn in reversed(self._func_stack):
                if f"{fn.qualname}.{expr.id}" in self.mod.function_infos:
                    return "closure"
            return None  # module-level def, import or unknown: fine/unknown
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    return "bound_method"
                # Module attribute (import-rooted) is a module-level
                # function; an instance attribute is a bound method.
                if base.id in self.mod.bindings:
                    return None
                return "bound_method"
            return None
        return None


def extract_module(path: str, tree: ast.Module, *, name: Optional[str] = None,
                   abs_path: Optional[Path] = None) -> ModuleInfo:
    """Build the :class:`ModuleInfo` for one parsed source file."""
    mod_name = name or module_name_for(abs_path or Path(path))
    package = mod_name.split(".")[0] if "." in mod_name else mod_name
    mod = ModuleInfo(name=mod_name, path=path, package=package)
    # Two passes over the body: symbols first so forward references inside
    # function bodies resolve, then facts.
    _SymbolPrepass(mod).visit(tree)
    _ModuleExtractor(mod).visit(tree)
    return mod


class _SymbolPrepass(ast.NodeVisitor):
    """Record top-level defs/classes before the fact-extraction walk."""

    def __init__(self, mod: ModuleInfo) -> None:
        self.mod = mod

    def visit_Module(self, node: ast.Module) -> None:
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.mod.functions.setdefault(
                    child.name, f"{self.mod.name}.{child.name}"
                )
            elif isinstance(child, ast.ClassDef):
                methods = self.mod.classes.setdefault(child.name, {})
                for sub in child.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[sub.name] = (
                            f"{self.mod.name}.{child.name}.{sub.name}"
                        )


def _dotted_of(node: ast.expr) -> Optional[str]:
    """Plain dotted spelling of a Name/Attribute chain (no resolution)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))
