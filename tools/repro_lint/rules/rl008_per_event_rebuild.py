"""RL008 — no per-event container rebuilds in the serving hot paths.

The original online session resolved warnings by rebuilding its whole
pending ``deque`` on every arrival (``deque(w for w in pending if ...)``),
which is O(P) per event — quadratic wall time once a backlog builds.  The
serving engine replaced that with heap-based resolution
(``repro.online.resolution``), and this rule keeps the regression from
coming back: inside the per-event methods of ``repro.online`` and
``repro.serve``, constructing a ``deque`` (any form) or materializing a
``list(...)`` copy is almost certainly a full rebuild of per-stream state.

Flagged, inside a function whose name is one of the per-event entry points
(``feed``, ``process``, ``step``, ``advance``, ``add`` ...):

- any call to ``collections.deque`` (aliased or bare);
- ``list(...)`` with at least one positional argument (a copy/rebuild;
  the empty ``list()`` constructor is fine).

Batch-granularity methods (``feed_batch``, ``process_store``, ...) are out
of scope — one container build per *batch* is the design.  Genuinely
per-event container needs (e.g. provably bounded size) can carry a
``# repro-lint: disable=RL008`` waiver with a justifying comment.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from tools.repro_lint.astutil import iter_calls, resolve_call
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: Method names that run once per *event* in the serving path.  Their batch
#: counterparts (feed_batch, feed_store, process_store, step_batch) may
#: build containers freely — once per batch is the point.
PER_EVENT_METHODS = frozenset(
    {
        "step",
        "feed",
        "process",
        "add",
        "remove",
        "advance",
        "observe",
        "observe_failure",
        "shard_of",
        "_advance",
        "_expire",
        "_emit_rule",
        "_emit_stat",
    }
)

def _rebuild_kind(call: ast.Call, ctx: "LintContext") -> Optional[str]:
    """``"deque"``/``"list"`` if this call constructs one, else ``None``."""
    dotted = resolve_call(call, ctx.imports)
    if dotted == "collections.deque" or (
        dotted is None
        and isinstance(call.func, ast.Name)
        and call.func.id == "deque"
    ):
        return "deque"
    if (
        isinstance(call.func, ast.Name)
        and call.func.id == "list"
        and dotted is None
        and call.args
    ):
        return "list"
    return None


@register
class PerEventRebuildRule:
    code = "RL008"
    severity = "error"
    name = "no-per-event-rebuild"
    description = "container rebuild inside a per-event serving method"
    hint = (
        "per-event methods in repro.online/repro.serve must do O(log P) "
        "work; keep incremental state (heaps, dicts) instead of rebuilding "
        "a deque/list per arrival — see repro.online.resolution"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if not (
            ctx.in_package("src", "repro", "online")
            or ctx.in_package("src", "repro", "serve")
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in PER_EVENT_METHODS:
                continue
            for call in iter_calls(node):
                kind = _rebuild_kind(call, ctx)
                if kind is None:
                    continue
                yield ctx.diagnostic(
                    self,
                    call,
                    f"{kind}(...) constructed inside per-event method "
                    f"{node.name}() — O(P) rebuild per arrival",
                )
