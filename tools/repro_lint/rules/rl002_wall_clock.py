"""RL002 — no wall-clock reads in library code.

Evaluation in this reproduction is *replayable*: every timestamp flows from
the RAS log (or the synthetic generator), so re-running an experiment on the
same inputs yields byte-identical warnings and metrics.  A ``time.time()``
or ``datetime.now()`` inside ``src/repro/`` would tie results to the clock
of the machine that ran them and break replay.

Scope: only files under ``src/repro/`` — scripts, benchmarks and tests may
measure their own runtime freely.  For *display-only* elapsed-time
measurement inside the library, use ``time.monotonic()`` /
``time.perf_counter()``, which never masquerade as event timestamps and are
not flagged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.astutil import iter_calls, resolve_call
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: Fully-qualified callables that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule:
    code = "RL002"
    severity = "error"
    name = "no-wall-clock"
    description = "wall-clock read in library code"
    hint = (
        "library code must derive times from the event stream; use "
        "time.monotonic()/perf_counter() for display-only timing"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if not ctx.in_package("src", "repro"):
            return
        for call in iter_calls(ctx.tree):
            dotted = resolve_call(call, ctx.imports)
            if dotted in WALL_CLOCK_CALLS:
                yield ctx.diagnostic(
                    self, call, f"wall-clock read in library code: {dotted}()"
                )
