"""RL006 — no direct stdout/stderr writes in library code.

Library code under ``src/repro/`` must communicate through return values or
the observability layer (``repro.obs``): a ``print()`` buried in a predictor
or the preprocessor pollutes every caller's output stream, breaks the CLI's
machine-readable modes, and hides what should be a metric.  Operational
visibility belongs in counters/spans (exported via ``--emit-metrics``), not
in ad-hoc prints.

Scope: ``src/repro/`` *except* ``src/repro/cli/`` — the CLI is the
user-facing surface and printing is its job (the package-level blanket
waiver the rule catalogue documents).  Scripts, benchmarks, tests and
``tools/`` are out of scope entirely.  Flagged: ``print(...)`` (including
``print(..., file=sys.stderr)``), ``sys.stdout.write``/``writelines`` and
the ``sys.stderr`` equivalents.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.astutil import iter_calls, resolve_call
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: Import-rooted stream-write callables (aliases resolved by ImportTable).
STREAM_WRITE_CALLS = frozenset(
    {
        "sys.stdout.write",
        "sys.stdout.writelines",
        "sys.stderr.write",
        "sys.stderr.writelines",
    }
)


@register
class NoDirectOutputRule:
    code = "RL006"
    severity = "error"
    name = "no-direct-output"
    description = "direct stdout/stderr write in library code"
    hint = (
        "library code returns values or records repro.obs metrics/spans; "
        "only the CLI layer prints"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if not ctx.in_package("src", "repro"):
            return
        if ctx.in_package("src", "repro", "cli"):
            return  # the CLI is the sanctioned printing surface
        for call in iter_calls(ctx.tree):
            func = call.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield ctx.diagnostic(
                    self, call, "print() in library code"
                )
                continue
            dotted = resolve_call(call, ctx.imports)
            if dotted in STREAM_WRITE_CALLS:
                yield ctx.diagnostic(
                    self, call, f"direct stream write in library code: {dotted}()"
                )
