"""RL011 — interprocedural determinism taint.

RL001 already bans *ambient* RNG call sites file-by-file.  What it cannot
see is a helper three calls deep that draws fresh entropy — e.g.
``as_generator()`` with no seed — while the public entry point above it
(``fit``/``predict``/``expand``/``generate``/…) advertises reproducibility.
This rule closes that gap with the call graph: collect every RNG taint
site recorded in pass 1, walk *callers* backwards, and report each taint
that is reachable from a public entry-point function (names declared in
``contracts.toml`` under ``[rules.RL011]``), quoting the witness path.

Taint origins (see ``symbols.py``):

* ``ambient`` — ``numpy.random.*`` module-level draws or stdlib
  ``random`` functions;
* ``fresh-entropy`` — ``repro.util.rng.as_generator()`` called without a
  seed (or with an explicit ``None``), which pulls OS entropy.

``repro.util.rng`` itself is exempt: it is the sanctioned seam where
fresh entropy is allowed to enter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import GraphContext


@register
class DeterminismTaintRule:
    code = "RL011"
    name = "determinism-taint"
    description = "entry point transitively draws unseeded randomness"
    severity = "error"
    hint = (
        "thread an explicit rng/seed parameter from the entry point down "
        "to this call (repro.util.rng.as_generator(seed) / spawn_child) so "
        "runs are reproducible end to end"
    )

    def check_project(self, gctx: "GraphContext") -> Iterator[Diagnostic]:
        project = gctx.project
        entry_names = set(gctx.contract.rl011_entry_points)
        if not entry_names:
            return

        # Entry points: public functions/methods in the contract root whose
        # terminal name is declared in the contract.
        entry_points = {
            qualname
            for qualname, fn in project.functions.items()
            if fn.is_public
            and fn.name in entry_names
            and gctx.contract.package_of_module(fn.module) is not None
        }
        if not entry_points:
            return

        for qualname, fn in sorted(project.functions.items()):
            if not fn.rng_taints:
                continue
            if gctx.contract.package_of_module(fn.module) is None:
                continue
            # Who can reach this tainted function?  ``reverse_reachable``
            # walks caller edges backwards from the taint and hands each
            # caller its witness path (caller first, taint last).
            reachers = project.reverse_reachable({qualname})
            entry = next(
                (e for e in sorted(entry_points) if e in reachers), None
            )
            if entry is None:
                continue
            witness = " -> ".join(reachers[entry])
            module = project.modules.get(fn.module)
            if module is None:
                continue
            for taint in fn.rng_taints:
                origin = (
                    "draws fresh entropy"
                    if taint.what == "fresh-entropy"
                    else "uses ambient RNG"
                )
                yield gctx.diagnostic(
                    self,
                    path=module.path,
                    line=taint.line,
                    col=taint.col,
                    message=(
                        f"{qualname} {origin} ({taint.detail}) and is "
                        f"reachable from entry point via {witness}"
                    ),
                )
