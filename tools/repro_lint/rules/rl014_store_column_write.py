"""RL014 — event-store columns are read-only outside ``repro.ras``.

The storage-backend redesign froze :class:`~repro.ras.store.EventStore`'s
column arrays: every public accessor (``.times``, ``.severities``, ...)
returns a read-only NumPy view, and rebinding a column attribute goes
through a deprecation shim that exists only for migration.  Code above the
data layer must treat a store as immutable and derive new stores
(``select``, ``with_subcat_ids``, ``time_shifted``, ...) instead of
mutating one in place — in-place writes silently desynchronize the columns
from the backend (and from any on-disk columnar manifest they were mapped
from).

Flagged, in library code under ``src/repro`` but outside ``repro.ras``:

- ``obj.times = ...`` / ``obj.times += ...`` — rebinding a store column
  attribute (any form of ``Assign``/``AugAssign`` whose target is an
  attribute named like a column on a non-``self`` object);
- ``obj.times[i] = ...`` / ``obj.times[i] += ...`` — element writes
  through a column attribute (these now raise ``ValueError`` at runtime on
  the read-only view; the rule catches them before the stack trace does).

``self.times = ...`` inside a class's own methods is not flagged — a class
may legitimately own an attribute that happens to share a column's name;
the store itself manages its columns through its backend.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: EventStore's column attributes (mirrors repro.ras.backend.COLUMN_NAMES;
#: kept literal here so the linter never imports the code under lint).
STORE_COLUMNS = frozenset(
    {
        "times",
        "severities",
        "facilities",
        "jobs",
        "location_ids",
        "entry_ids",
        "subcat_ids",
    }
)


def _column_write(target: ast.AST) -> Optional[tuple[str, str]]:
    """``(column, form)`` when ``target`` writes a store column, else None.

    ``form`` is ``"rebind"`` for ``obj.col = ...`` and ``"element"`` for
    ``obj.col[...] = ...``.  Writes through bare ``self`` are the owning
    class managing its own attribute and are never flagged.
    """
    if isinstance(target, ast.Subscript):
        inner = target.value
        if isinstance(inner, ast.Attribute) and inner.attr in STORE_COLUMNS:
            if isinstance(inner.value, ast.Name) and inner.value.id == "self":
                return None
            return inner.attr, "element"
        return None
    if isinstance(target, ast.Attribute) and target.attr in STORE_COLUMNS:
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return None
        return target.attr, "rebind"
    return None


@register
class StoreColumnWriteRule:
    code = "RL014"
    severity = "error"
    name = "store-columns-read-only"
    description = "write to an event-store column outside repro.ras"
    hint = (
        "EventStore columns are immutable above the data layer; derive a "
        "new store (select/with_subcat_ids/time_shifted/from_columns) "
        "instead of assigning to .times/.severities/... — see "
        "docs/storage.md"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if not ctx.in_package("src", "repro"):
            return
        if ctx.in_package("src", "repro", "ras"):
            return  # the data layer owns its columns
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets: list[ast.AST] = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                hit = _column_write(target)
                if hit is None:
                    continue
                column, form = hit
                what = (
                    f"element write through .{column}[...]"
                    if form == "element"
                    else f"rebind of .{column}"
                )
                yield ctx.diagnostic(
                    self,
                    target,
                    f"{what} — store columns are read-only outside "
                    "repro.ras",
                )
