"""RL009 — model persistence must go through the serialization layer.

Fitted predictors have exactly two blessed paths to disk:
:mod:`repro.core.serialize` (the versioned codec registry — stable format,
``format_version`` gate, byte-identical round trips) and
:mod:`repro.lifecycle` (the registry, which builds on it).  Anything else —
``pickle`` of a predictor, or an ad-hoc ``json.dumps(model.__dict__)``
scattered through library code — creates a second, unversioned wire format
that silently diverges from the codecs and breaks the lifecycle registry's
content addressing.

Two checks inside ``src/repro/`` (the two blessed modules are exempt):

- any import-resolved ``pickle`` / ``cPickle`` / ``dill`` ``dump(s)`` /
  ``load(s)`` call is flagged unconditionally — predictor or not, the
  library has no business pickling (worker transport ships learned-state
  *documents*, not objects);
- a ``json.dump(s)`` call whose payload expression mentions a
  predictor-ish identifier (``model``, ``predictor``, ``meta`` — see
  :data:`PREDICTOR_HINTS`) is flagged as ad-hoc model persistence.  This is
  a heuristic by design: naming a payload ``model_doc`` outside the
  serialization layer is exactly the smell the rule exists to catch.  False
  positives carry the standard waiver (``# repro-lint: disable=RL009``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.astutil import iter_calls, resolve_call
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: Object-serialization calls never allowed in library code.
PICKLE_CALLS = frozenset(
    f"{mod}.{fn}"
    for mod in ("pickle", "cPickle", "dill")
    for fn in ("dump", "dumps", "load", "loads")
)

JSON_DUMP_CALLS = frozenset({"json.dump", "json.dumps"})

#: Identifier substrings that mark a JSON payload as predictor-shaped.
PREDICTOR_HINTS = ("predictor", "model")

#: Identifiers matched exactly (substring matching would be too broad).
PREDICTOR_EXACT = frozenset({"meta", "clf", "estimator"})


def _mentions_predictor(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is None:
            continue
        lowered = name.lower()
        if lowered in PREDICTOR_EXACT:
            return True
        if any(hint in lowered for hint in PREDICTOR_HINTS):
            return True
    return False


@register
class ModelPersistenceRule:
    code = "RL009"
    severity = "error"
    name = "model-persistence"
    description = "predictor persistence outside the serialization layer"
    hint = (
        "persist models via repro.core.serialize (save_model/model_to_dict) "
        "or the lifecycle ModelRegistry; never pickle or hand-rolled JSON"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if not ctx.in_package("src", "repro"):
            return
        if ctx.is_module("core", "serialize.py") or ctx.in_package(
            "repro", "lifecycle"
        ):
            return
        for call in iter_calls(ctx.tree):
            dotted = resolve_call(call, ctx.imports)
            if dotted in PICKLE_CALLS:
                yield ctx.diagnostic(
                    self,
                    call,
                    f"object (de)serialization via {dotted}() in library code",
                )
            elif dotted in JSON_DUMP_CALLS and call.args:
                if _mentions_predictor(call.args[0]):
                    yield ctx.diagnostic(
                        self,
                        call,
                        f"ad-hoc {dotted}() of a predictor-shaped payload",
                    )
