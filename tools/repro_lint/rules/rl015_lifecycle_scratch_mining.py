"""RL015 — no from-scratch mining inside the lifecycle layer.

The lifecycle layer retrains on sliding windows, where successive training
sets overlap almost entirely.  The incremental mining engine
(``repro.mining.incremental``, surfaced through ``lifecycle.Retrainer``'s
:class:`~repro.evaluation.incremental.IncrementalFitter`) maintains the
mined state across retrains and re-pays only for the window delta, with
bit-identical results; calling the from-scratch miners from lifecycle code
silently re-pays the full mining cost on every retrain — exactly the
regression the incremental engine exists to prevent.

Flagged, in library code under ``src/repro/lifecycle``:

- any call to ``apriori()``, ``fpgrowth()`` or ``generate_rules()`` —
  whether imported directly or reached as ``module.attr``.

Fitting through a :class:`~repro.evaluation.spec.PredictorSpec` (``spec.
build().fit(...)`` or ``fit_spec``) is not flagged: that path is gated by
the retrainer's fitter and falls back to from-scratch mining only when
incremental fitting is off.  A deliberate from-scratch call (e.g. a
one-shot diagnostic) can carry a standard waiver comment.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from tools.repro_lint.astutil import iter_calls, resolve_call
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: The from-scratch mining entry points (repro.mining's public miners).
SCRATCH_MINERS = frozenset({"apriori", "fpgrowth", "generate_rules"})


def _called_name(call: ast.Call, ctx: "LintContext") -> Optional[str]:
    """Bare name of the called function, through import aliases."""
    dotted = resolve_call(call, ctx.imports)
    if dotted:
        if not dotted.startswith("repro.mining"):
            return None  # an unrelated function that shares the name
        return dotted.rsplit(".", 1)[-1]
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


@register
class LifecycleScratchMiningRule:
    code = "RL015"
    severity = "error"
    name = "lifecycle-scratch-mining"
    description = "from-scratch mining call inside repro.lifecycle"
    hint = (
        "lifecycle retrains slide overlapping windows; mine through the "
        "maintained incremental engine (Retrainer's IncrementalFitter / "
        "repro.mining.incremental) instead of re-running apriori/fpgrowth/"
        "generate_rules from scratch — see docs/incremental_mining.md"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if not ctx.in_package("src", "repro", "lifecycle"):
            return
        for call in iter_calls(ctx.tree):
            name = _called_name(call, ctx)
            if name not in SCRATCH_MINERS:
                continue
            yield ctx.diagnostic(
                self,
                call,
                f"from-scratch {name}() in lifecycle code — O(window) "
                "mining on every retrain",
            )
