"""RL010 — layering contract.

``tools/repro_lint/contracts.toml`` declares the package layers of the
``repro`` tree as an ordered DAG (foundation → data → domain → transform →
models → assembly → evaluation → online → app).  This rule checks every
import edge of the whole-program model against it:

* a package importing a package in a **later** (higher) layer is an error
  — that is an upward dependency, the thing layering exists to forbid;
* two packages importing **each other** (directly or via any intra-layer
  chain) is a package cycle and an error regardless of layers — cycles are
  what make refactors and incremental loading impossible;
* a typing-only upward import (inside ``if TYPE_CHECKING:``) demotes to
  warn: it is coupling worth seeing, but carries no runtime dependency.

Imports within one package, imports into lower layers, and modules outside
the contract root (tests, tools, scripts) are all fine.  Packages the
contract does not assign are skipped here — contract *totality* over
``src/repro`` is asserted by a pytest gate instead, so a freshly added
package cannot silently dodge the contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import GraphContext


def _package_sccs(edges: dict[str, set[str]]) -> list[set[str]]:
    """Strongly connected components (iterative Tarjan) of ≥ 2 packages."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = [0]

    for root in sorted(edges):
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(edges.get(root, ()))))
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    sccs.append(scc)
    return sccs


@register
class LayeringContractRule:
    code = "RL010"
    name = "layering-contract"
    description = "package import violates the declared layer DAG"
    severity = "error"
    hint = (
        "depend downward only: move the shared code below both packages, "
        "invert the dependency (callback/protocol), or relocate the module "
        "to the layer it actually belongs to (contract: "
        "tools/repro_lint/contracts.toml)"
    )

    def check_project(self, gctx: "GraphContext") -> Iterator[Diagnostic]:
        contract = gctx.contract
        # Package-level digraph over assigned packages, for cycle detection.
        pkg_edges: dict[str, set[str]] = {}
        resolved = list(gctx.project.project_import_edges())
        for edge in resolved:
            src_pkg = contract.package_of_module(edge.src_module)
            dst_pkg = contract.package_of_module(edge.dst_module)
            if src_pkg is None or dst_pkg is None or src_pkg == dst_pkg:
                continue
            if contract.layer_of(src_pkg) is None or contract.layer_of(dst_pkg) is None:
                continue
            if not edge.typing_only:
                pkg_edges.setdefault(src_pkg, set()).add(dst_pkg)
        cyclic_pkgs = _package_sccs(pkg_edges)
        in_cycle: dict[str, set[str]] = {}
        for scc in cyclic_pkgs:
            for pkg in scc:
                in_cycle[pkg] = scc

        for edge in resolved:
            src_pkg = contract.package_of_module(edge.src_module)
            dst_pkg = contract.package_of_module(edge.dst_module)
            if src_pkg is None or dst_pkg is None or src_pkg == dst_pkg:
                continue
            src_layer = contract.layer_of(src_pkg)
            dst_layer = contract.layer_of(dst_pkg)
            if src_layer is None or dst_layer is None:
                continue
            src_mod = gctx.project.modules[edge.src_module]
            if dst_layer.index > src_layer.index:
                severity = "warn" if edge.typing_only else "error"
                qualifier = "typing-only " if edge.typing_only else ""
                yield gctx.diagnostic(
                    self,
                    path=src_mod.path,
                    line=edge.line,
                    col=edge.col,
                    message=(
                        f"upward {qualifier}import: {src_pkg} "
                        f"(layer '{src_layer.name}') imports {dst_pkg} "
                        f"(layer '{dst_layer.name}')"
                    ),
                    severity=severity,
                )
            elif (
                not edge.typing_only
                and src_pkg in in_cycle
                and dst_pkg in in_cycle[src_pkg]
            ):
                cycle = " <-> ".join(sorted(in_cycle[src_pkg]))
                yield gctx.diagnostic(
                    self,
                    path=src_mod.path,
                    line=edge.line,
                    col=edge.col,
                    message=(
                        f"package cycle: {src_pkg} imports {dst_pkg} "
                        f"inside cycle [{cycle}]"
                    ),
                )
