"""RL004 — window parameters are seconds, not minutes.

All window/offset/gap parameters in this codebase are **seconds** (the paper
works in seconds too: 300 s compression window, 15/25-minute rule-generation
windows written as ``15 * MINUTE``).  The characteristic mistake is passing
one of the paper's headline *minute* values — 5, 15, 25 or 60 — as a bare
literal: ``rule_window=15`` builds 15-*second* windows, mines almost no
rules, and quietly reports terrible recall instead of crashing.

Flags a bare numeric literal from the suspicious set bound to a
window-flavoured keyword argument (``window``, ``*_window``, ``offset_*``,
``gap``, ``*_gap``).  Expressions like ``15 * MINUTE`` or honest second
counts (``window=900``) are untouched.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.astutil import iter_calls
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: Paper-headline minute values that are implausible as second counts here.
SUSPICIOUS_MINUTES = frozenset({5, 15, 25, 60})


def _is_window_kwarg(name: str) -> bool:
    return (
        name == "window"
        or name.endswith("_window")
        or name.startswith("offset_")
        or name == "gap"
        or name.endswith("_gap")
    )


@register
class MinuteLiteralRule:
    code = "RL004"
    severity = "error"
    name = "seconds-only-windows"
    description = "minute-valued literal passed where seconds are expected"
    hint = "window arguments are in seconds; write N * MINUTE (repro.util.timeutil)"

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        for call in iter_calls(ctx.tree):
            for kw in call.keywords:
                if kw.arg is None or not _is_window_kwarg(kw.arg):
                    continue
                value = kw.value
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, (int, float))
                    and not isinstance(value.value, bool)
                    and value.value in SUSPICIOUS_MINUTES
                ):
                    minutes = value.value
                    yield ctx.diagnostic(
                        self,
                        value,
                        f"{kw.arg}={minutes!r} looks like minutes; "
                        f"window arguments are seconds",
                    )
