"""RL013 — blocking call reachable from an async function.

A blocking call inside ``async def`` stalls the whole event loop: every
other coroutine — heartbeats, warning resolution, the serving loop —
freezes until it returns.  The per-file view catches ``time.sleep`` typed
directly into a coroutine; it cannot catch the same call hiding two
layers down in a sync helper the coroutine awaits nothing to reach.

Pass 1 records the blocking call sites of every function (``time.sleep``,
``subprocess.run`` and friends, ``os.system``, bare ``open``, argless
``.acquire()``, ``urllib.request.urlopen``, …).  This rule takes each
``async def`` in the contract root and walks its *sync* callees
transitively (``forward_reach`` with sync-only traversal — crossing into
another coroutine is fine, it yields); any blocking site found on the way
is reported.  Direct hits anchor at the blocking call; transitive hits
anchor at the call site too, with the call path quoted so the fix target
is obvious.

The roadmap's asyncio ingestion daemon lands after this rule, so the
event-loop invariant is enforced from the first coroutine committed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import GraphContext


@register
class AsyncBlockingRule:
    code = "RL013"
    name = "async-blocking"
    description = "blocking call reachable from an async function"
    severity = "error"
    hint = (
        "inside a coroutine use the async equivalent (asyncio.sleep, "
        "loop.run_in_executor, asyncio.create_subprocess_exec) or push the "
        "blocking work behind an executor boundary"
    )

    def check_project(self, gctx: "GraphContext") -> Iterator[Diagnostic]:
        project = gctx.project
        sync_only = {
            qualname
            for qualname, fn in project.functions.items()
            if not fn.is_async
        }
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            if not fn.is_async:
                continue
            if gctx.contract.package_of_module(fn.module) is None:
                continue
            module = project.modules.get(fn.module)
            if module is None:
                continue

            # Direct blocking calls in the coroutine body.
            for site in fn.blocking:
                yield gctx.diagnostic(
                    self,
                    path=module.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"async {qualname} calls blocking {site.detail} "
                        f"directly"
                    ),
                )

            # Blocking calls buried in sync helpers reachable from here.
            # Traversal is restricted to sync intermediates: entering
            # another coroutine is not blocking (it must be awaited).
            reach = project.forward_reach(qualname, through=sync_only)
            for callee_qual in sorted(reach):
                if callee_qual == qualname:
                    continue
                callee = project.functions.get(callee_qual)
                if callee is None or callee.is_async or not callee.blocking:
                    continue
                path = reach[callee_qual]
                site = callee.blocking[0]
                line, col = self._anchor(fn, path, project)
                yield gctx.diagnostic(
                    self,
                    path=module.path,
                    line=line,
                    col=col,
                    message=(
                        f"async {qualname} reaches blocking {site.detail} "
                        f"in {callee_qual} (line {site.line}) via "
                        f"{' -> '.join(path)}"
                    ),
                )

    @staticmethod
    def _anchor(fn, path, project) -> tuple[int, int]:
        """Call site of the first hop inside the async function body."""
        if len(path) >= 2:
            first_hop = path[1]
            for call in fn.calls:
                if call.target is None:
                    continue
                resolved = project.resolve(call.target)
                if resolved is not None and resolved.qualname == first_hop:
                    return call.line, call.col
        return fn.line, fn.col
