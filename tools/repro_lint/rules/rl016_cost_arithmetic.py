"""RL016 — no direct cost arithmetic outside ``repro.actions``.

The actions layer owns the one price book (``repro.actions.cost.
CostModel``) and all expected-value/settlement arithmetic over it.  Code
elsewhere that multiplies or adds cost attributes re-derives policy logic
in place — exactly how the pre-actions benchmarks drifted from each other:
two cost models, two notions of "saved", no single ledger to reconcile
them.  Passing a cost as a keyword argument (``CostModel(checkpoint_cost=
cost)``) is configuration and stays legal everywhere; *arithmetic* on one
is policy and belongs behind the actions API.

Flagged, in library code under ``src/repro`` (outside ``repro.actions``)
and in ``benchmarks``:

- any binary operation or augmented assignment with a cost-named operand
  (``checkpoint_cost``, ``restart_cost``, ``migration_cost``,
  ``quarantine_drain``, ``quarantine_occupancy``, ``false_alarm_cost``),
  whether a bare name or an attribute access.

Tests are exempt (they assert against hand-computed expectations).  A
deliberate derivation (e.g. printing a ratio in an operator report) can
carry a standard waiver comment.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: Attribute/parameter names that denote a price in the actions cost model.
COST_ATTRS = frozenset(
    {
        "checkpoint_cost",
        "restart_cost",
        "migration_cost",
        "quarantine_drain",
        "quarantine_occupancy",
        "false_alarm_cost",
    }
)


def _cost_name(node: ast.expr) -> Optional[str]:
    """The cost attribute an expression names directly, if any."""
    if isinstance(node, ast.Name) and node.id in COST_ATTRS:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in COST_ATTRS:
        return node.attr
    return None


@register
class CostArithmeticRule:
    code = "RL016"
    severity = "error"
    name = "cost-arithmetic-outside-actions"
    description = "direct cost arithmetic outside repro.actions"
    hint = (
        "cost/expected-value arithmetic belongs to the actions layer's "
        "single price book — call repro.actions.CostModel's pricing/"
        "settlement methods (or evaluate_policy/simulate_rescue) instead "
        "of re-deriving the economics in place; see docs/actions.md"
    )

    def _in_scope(self, ctx: "LintContext") -> bool:
        if ctx.in_package("benchmarks"):
            return True
        if not ctx.in_package("src", "repro"):
            return False
        return not ctx.in_package("src", "repro", "actions")

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp):
                operands = (node.left, node.right)
            elif isinstance(node, ast.AugAssign):
                operands = (node.target, node.value)
            else:
                continue
            for operand in operands:
                found = _cost_name(operand)
                if found is not None:
                    yield ctx.diagnostic(
                        self,
                        node,
                        f"arithmetic on {found} outside repro.actions — "
                        "policy logic leaking out of the cost model",
                    )
                    break
