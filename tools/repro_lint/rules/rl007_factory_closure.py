"""RL007 — no factory closures into the evaluation entry points.

The evaluation layer's historical convention passed zero-argument lambda
closures (``lambda w=w: factory(w)``) into ``cross_validate`` and the sweep
functions.  Closures cannot be pickled to process-pool workers and have no
stable content hash, so every such call site forfeits parallel execution
and artifact caching — and silently falls back to the serial path.  Library
code must pass a ``PredictorSpec`` instead; the legacy callable form remains
only for external callers.

Scope: ``src/repro/`` except ``src/repro/evaluation/sweep.py``, which hosts
the legacy compatibility shim itself (benchmarks, tests and examples may
still exercise the legacy path deliberately).  Flagged:

- a ``lambda`` as the predictor/factory argument (first positional) of
  ``cross_validate``, ``holdout_validate``, ``prediction_window_sweep`` or
  ``rule_window_sweep``;
- any call to ``rule_window_sweep`` at all — the alias was deprecated and
  has been removed from :mod:`repro.evaluation.sweep`; sweep
  rule-generation windows with ``sweep(spec.grid("rule_window", ...), ...)``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from tools.repro_lint.astutil import iter_calls, resolve_call
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: Entry points whose first positional argument is a predictor description.
FACTORY_ENTRY_POINTS = frozenset(
    {
        "cross_validate",
        "holdout_validate",
        "prediction_window_sweep",
        "rule_window_sweep",
    }
)

DEPRECATED_ENTRY_POINTS = frozenset({"rule_window_sweep"})


def _called_name(call: ast.Call, ctx: "LintContext") -> Optional[str]:
    """The bare name of the called function, through import aliases."""
    dotted = resolve_call(call, ctx.imports)
    if dotted:
        return dotted.rsplit(".", 1)[-1]
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


@register
class FactoryClosureRule:
    code = "RL007"
    severity = "error"
    name = "no-factory-closure"
    description = "factory closure passed to an evaluation entry point"
    hint = (
        "pass a PredictorSpec (picklable, cacheable) instead of a lambda "
        "factory; for rule-window sweeps use "
        "sweep(spec.grid('rule_window', windows), events, ...)"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if not ctx.in_package("src", "repro"):
            return
        if ctx.is_module("repro", "evaluation", "sweep.py"):
            return  # hosts the legacy compatibility shim itself
        for call in iter_calls(ctx.tree):
            name = _called_name(call, ctx)
            if name not in FACTORY_ENTRY_POINTS:
                continue
            if name in DEPRECATED_ENTRY_POINTS:
                yield ctx.diagnostic(
                    self, call, f"deprecated evaluation alias {name}()"
                )
            if call.args and isinstance(call.args[0], ast.Lambda):
                yield ctx.diagnostic(
                    self,
                    call,
                    f"lambda factory passed to {name}() — serial-only and "
                    f"uncacheable",
                )
