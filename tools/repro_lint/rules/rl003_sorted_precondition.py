"""RL003 — guard the sorted-array precondition.

``numpy.searchsorted`` (and the window helpers built on it) silently return
garbage on unsorted input — no exception, just wrong window bounds and
therefore plausible-but-wrong precision/recall.  Any function that runs a
binary-search sink directly on one of *its own parameters* must first route
that parameter through :func:`repro.util.validation.check_sorted`, or carry
an explicit ``# repro-lint: sorted`` waiver (on the ``def`` line or the call
line) asserting the caller guarantees order.

Only bare parameter names are tracked: locals derived inside the function
(``fatal_times = store.fatal_events().times``) inherit whatever invariant
the deriving code establishes and stay out of scope, which keeps the rule
precise enough to run with zero false positives on this tree.

The guard must appear on an earlier line than the sink — a lexical
approximation of reachability that matches the validate-at-entry style used
throughout the package.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from tools.repro_lint.astutil import (
    call_name,
    function_param_names,
    iter_calls,
    iter_functions,
    name_appears_in,
    resolve_call,
)
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

#: Call names that binary-search a sorted array given as first argument.
SINK_FUNCTIONS = frozenset({"window_slice", "events_in_window"})
GUARD_NAME = "check_sorted"


def _sink_array_operand(call: ast.Call, ctx: "LintContext") -> Optional[ast.expr]:
    """The array expression a sink call binary-searches, if this is a sink."""
    dotted = resolve_call(call, ctx.imports)
    if dotted == "numpy.searchsorted":
        return call.args[0] if call.args else None
    name = call_name(call)
    if name == "searchsorted" and isinstance(call.func, ast.Attribute):
        # Method form ``times.searchsorted(x)`` — the receiver is the array.
        return call.func.value
    if name in SINK_FUNCTIONS:
        return call.args[0] if call.args else None
    return None


@register
class SortedPreconditionRule:
    code = "RL003"
    severity = "error"
    name = "sorted-precondition"
    description = "binary search on an unguarded parameter"
    hint = (
        "call validation.check_sorted(param, ...) before searching, or waive "
        "with '# repro-lint: sorted' if the caller guarantees order"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        for func in iter_functions(ctx.tree):
            params = set(function_param_names(func))
            if not params:
                continue
            # Lines on which each parameter is routed through check_sorted.
            guard_lines: dict[str, int] = {}
            sinks: list[tuple[ast.Call, str]] = []
            for call in iter_calls(func):
                if call_name(call) == GUARD_NAME:
                    for param in params:
                        if any(name_appears_in(arg, param) for arg in call.args):
                            line = guard_lines.get(param, call.lineno)
                            guard_lines[param] = min(line, call.lineno)
                    continue
                operand = _sink_array_operand(call, ctx)
                if (
                    isinstance(operand, ast.Name)
                    and operand.id in params
                ):
                    sinks.append((call, operand.id))
            for call, param in sinks:
                guarded_at = guard_lines.get(param)
                if guarded_at is not None and guarded_at <= call.lineno:
                    continue
                if ctx.waivers.is_waived(self.code, func.lineno, call.lineno):
                    continue
                yield ctx.diagnostic(
                    self,
                    call,
                    f"parameter {param!r} is binary-searched in "
                    f"{func.name}() without a check_sorted guard",
                )
