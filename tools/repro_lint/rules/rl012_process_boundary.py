"""RL012 — process-boundary pickling safety.

Everything handed to a ``ProcessPoolExecutor`` — the ``submit``/``map``
callable, its arguments, and the pool's ``initializer`` — crosses a
process boundary and must pickle.  Lambdas and closures *never* pickle;
bound methods drag their whole instance across the wire (they pickle, but
ship the object and silently fork its state).  The evaluation engine
already learned this the hard way, which is why its workers are
module-level functions fed by specs.

Pass 1 records every submit-like site whose receiver is provably a
``concurrent.futures.ProcessPoolExecutor`` (tracked through ``with``
targets and local assignments; ``functools.partial`` is unwrapped).  This
rule reports them:

* ``lambda`` or closure (a function defined inside another function)
  → **error**: will raise ``PicklingError`` at runtime;
* bound method (``self.f`` / ``obj.f``) → **warn**: legal but ships the
  instance — usually wants to be a module-level function + args.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import GraphContext

_EXPLANATION = {
    "lambda": "a lambda cannot be pickled across the process boundary",
    "closure": (
        "a nested function cannot be pickled across the process boundary"
    ),
    "bound_method": (
        "a bound method pickles its whole instance across the process "
        "boundary"
    ),
}


@register
class ProcessBoundaryRule:
    code = "RL012"
    name = "process-boundary"
    description = "unpicklable or state-carrying callable crosses a process pool"
    severity = "error"
    hint = (
        "pass a module-level function plus plain-data arguments to the "
        "pool; hoist the lambda/closure to module scope and thread its "
        "captured state through explicit parameters"
    )

    def check_project(self, gctx: "GraphContext") -> Iterator[Diagnostic]:
        project = gctx.project
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            if not fn.submits:
                continue
            module = project.modules.get(fn.module)
            if module is None:
                continue
            for site in fn.submits:
                explanation = _EXPLANATION.get(site.what)
                if explanation is None:
                    continue
                severity = "warn" if site.what == "bound_method" else "error"
                yield gctx.diagnostic(
                    self,
                    path=module.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"{qualname} hands {site.detail} to a "
                        f"ProcessPoolExecutor: {explanation}"
                    ),
                    severity=severity,
                )
