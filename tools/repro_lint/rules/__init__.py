"""Bundled repro-lint rules.

Importing this package registers every bundled rule with the registry; a new
checker only needs a module here plus an import line below.
"""

from tools.repro_lint.rules import (  # noqa: F401
    rl001_ambient_rng,
    rl002_wall_clock,
    rl003_sorted_precondition,
    rl004_minute_literals,
    rl005_fraction_validation,
    rl006_no_direct_output,
    rl007_factory_closure,
    rl008_per_event_rebuild,
    rl009_model_persistence,
    rl010_layering,
    rl011_determinism_taint,
    rl012_process_boundary,
    rl013_async_blocking,
    rl014_store_column_write,
    rl015_lifecycle_scratch_mining,
    rl016_cost_arithmetic,
)
