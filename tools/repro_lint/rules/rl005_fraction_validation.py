"""RL005 — validate fraction-like parameters at public API boundaries.

Support, confidence and probability parameters are fractions in ``[0, 1]``.
A caller passing a percentage (``min_support=4`` instead of ``0.04``) gets
an empty ruleset and a zero-recall predictor — no crash, just wrong numbers.
Public functions in ``src/repro/`` must therefore route every fraction-like
parameter through :func:`repro.util.validation.check_fraction` (or
:func:`check_in_range`) before use.

A parameter is fraction-like when named ``support``, ``confidence``,
``min_support``, ``min_confidence`` or ``*_prob``.  A function is public
when neither its own name nor its enclosing class's name is underscored
(``__init__``/``__post_init__`` count as the public constructor surface).
Parameters that may legitimately be ``None`` (default ``None``) are only
required to be checked when a check call is absent entirely — the idiomatic
``if x is not None: check_fraction(x, ...)`` satisfies the rule because the
check call is present in the body.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.astutil import (
    FUNCTION_NODES,
    call_name,
    function_param_names,
    iter_calls,
    name_appears_in,
)
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext

FRACTION_NAMES = frozenset({"support", "confidence", "min_support", "min_confidence"})
CHECK_CALLS = frozenset({"check_fraction", "check_in_range"})
CONSTRUCTORS = frozenset({"__init__", "__post_init__"})


def _is_fraction_param(name: str) -> bool:
    return name in FRACTION_NAMES or name.endswith("_prob")


@register
class FractionValidationRule:
    code = "RL005"
    severity = "error"
    name = "public-api-validation"
    description = "fraction-like parameter not validated"
    hint = (
        "route the parameter through validation.check_fraction "
        "(or check_in_range) before using it"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if not ctx.in_package("src", "repro"):
            return
        yield from self._walk(ctx, ctx.tree, public_scope=True)

    def _walk(
        self, ctx: "LintContext", node: ast.AST, public_scope: bool
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._walk(
                    ctx, child, public_scope and not child.name.startswith("_")
                )
            elif isinstance(child, FUNCTION_NODES):
                is_public = not child.name.startswith("_") or (
                    child.name in CONSTRUCTORS
                )
                if public_scope and is_public:
                    yield from self._check_function(ctx, child)
                # Nested defs are never public API; don't descend.

    def _check_function(
        self, ctx: "LintContext", func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        fraction_params = [
            p for p in function_param_names(func)
            if p != "self" and _is_fraction_param(p)
        ]
        if not fraction_params:
            return
        checked: set[str] = set()
        for call in iter_calls(func):
            if call_name(call) in CHECK_CALLS:
                for param in fraction_params:
                    if any(name_appears_in(arg, param) for arg in call.args):
                        checked.add(param)
        for param in fraction_params:
            if param in checked:
                continue
            if ctx.waivers.is_waived(self.code, func.lineno):
                continue
            yield ctx.diagnostic(
                self,
                func,
                f"public function {func.name}() takes fraction-like "
                f"parameter {param!r} without check_fraction",
            )
