"""RL001 — no ambient randomness.

Every stochastic component must thread an explicit
:class:`numpy.random.Generator` (see ``src/repro/util/rng.py``): a hidden
``np.random.*`` or ``random.*`` call consumes from process-global state, so
results silently depend on import order and on how many draws *other* code
made first — the classic source of irreproducible precision/recall numbers.

Flags calls whose resolved target is

* ``numpy.random.<fn>`` for any lowercase ``<fn>`` (``seed``, ``random``,
  ``default_rng``, distribution samplers, ...).  Capitalised names
  (``Generator``, ``SeedSequence``, ``PCG64``) are constructors taking
  explicit seed material and are allowed.
* anything in the stdlib ``random`` module (``random.random``,
  ``random.seed``, a bare ``choice`` from ``from random import choice``...).

``src/repro/util/rng.py`` is the one sanctioned home for ``default_rng`` and
is exempt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.astutil import iter_calls, resolve_call
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import register

if TYPE_CHECKING:
    from tools.repro_lint.engine import LintContext


@register
class AmbientRandomnessRule:
    code = "RL001"
    severity = "error"
    name = "no-ambient-randomness"
    description = "ambient RNG call"
    hint = (
        "accept a Generator/SeedLike parameter and go through "
        "repro.util.rng.as_generator / spawn_child instead"
    )

    def check(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        if ctx.is_module("repro", "util", "rng.py"):
            return
        for call in iter_calls(ctx.tree):
            dotted = resolve_call(call, ctx.imports)
            if dotted is None:
                continue
            if dotted.startswith("numpy.random."):
                fn = dotted.rsplit(".", 1)[1]
                if fn[:1].islower():
                    yield ctx.diagnostic(
                        self, call, f"ambient numpy randomness: {dotted}()"
                    )
            elif dotted == "random" or dotted.startswith("random."):
                yield ctx.diagnostic(
                    self, call, f"ambient stdlib randomness: {dotted}()"
                )
