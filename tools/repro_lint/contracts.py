"""The architecture contract: declared package layers, loaded from TOML.

``contracts.toml`` (checked in next to this module) declares an ordered
list of layers, each naming the top-level ``repro`` sub-packages it
contains.  A package may import its own layer or any layer *below* it;
importing upward is an RL010 error, and mutually-importing packages (a
package-level cycle) are an RL010 error regardless of layer.  Typing-only
upward imports (inside ``if TYPE_CHECKING:``) demote to warn — they are
coupling, but not load-bearing at runtime.

The same file carries the data-driven knobs of the other graph rules
(RL011 entry-point names), so tightening the contract is a data change,
not a code change.

Python 3.11+ parses the file with :mod:`tomllib`; on 3.10 a minimal
built-in parser covering exactly the subset this file uses (tables,
arrays of tables, strings, ints, bools, string arrays) takes over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

DEFAULT_CONTRACT_PATH = Path(__file__).resolve().parent / "contracts.toml"


@dataclass(frozen=True)
class Layer:
    name: str
    index: int
    packages: tuple[str, ...]


@dataclass
class Contract:
    """Parsed architecture contract."""

    root: str
    layers: list[Layer]
    exempt_modules: tuple[str, ...] = ()
    rl011_entry_points: tuple[str, ...] = ()
    source_path: Optional[str] = None
    _layer_of: dict[str, Layer] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for layer in self.layers:
            for pkg in layer.packages:
                if pkg in self._layer_of:
                    raise ValueError(
                        f"package {pkg!r} assigned to two layers "
                        f"({self._layer_of[pkg].name!r} and {layer.name!r})"
                    )
                self._layer_of[pkg] = layer

    def layer_of(self, package: str) -> Optional[Layer]:
        """Layer of a top-level sub-package of ``root`` (None: unassigned)."""
        return self._layer_of.get(package)

    def package_of_module(self, module_name: str) -> Optional[str]:
        """Contract package of a dotted module, or None if out of scope."""
        if module_name in self.exempt_modules:
            return None
        prefix = self.root + "."
        if not module_name.startswith(prefix):
            return None
        return module_name[len(prefix):].split(".")[0]

    def assigned_packages(self) -> set[str]:
        return set(self._layer_of)


def load_contract(path: Optional[Path] = None) -> Contract:
    """Load and validate the contract from ``contracts.toml``."""
    path = path or DEFAULT_CONTRACT_PATH
    data = parse_toml(path.read_text("utf-8"))
    contract = data.get("contract", {})
    raw_layers = data.get("layer", [])
    if not raw_layers:
        raise ValueError(f"{path}: no [[layer]] tables declared")
    layers = [
        Layer(
            name=str(entry["name"]),
            index=i,
            packages=tuple(entry.get("packages", [])),
        )
        for i, entry in enumerate(raw_layers)
    ]
    rules = data.get("rules", {})
    rl011 = rules.get("RL011", {}) if isinstance(rules, dict) else {}
    return Contract(
        root=str(contract.get("root", "repro")),
        layers=layers,
        exempt_modules=tuple(contract.get("exempt_modules", [])),
        rl011_entry_points=tuple(rl011.get("entry_points", [])),
        source_path=str(path),
    )


def parse_toml(text: str) -> dict[str, Any]:
    """Parse TOML via stdlib tomllib, or the minimal fallback on 3.10."""
    try:
        import tomllib
    except ImportError:
        return _parse_minimal_toml(text)
    return tomllib.loads(text)


def _parse_minimal_toml(text: str) -> dict[str, Any]:
    """Parse the TOML subset ``contracts.toml`` uses.

    Supports ``[table]``, ``[table.sub]``, ``[[array.of.tables]]``,
    ``key = "string" | 123 | true | false | [ "a", "b" ]`` (arrays may
    span lines) and ``#`` comments.  Anything else raises ValueError —
    this is a fallback for Python 3.10, not a general parser.
    """
    root: dict[str, Any] = {}
    current: dict[str, Any] = root
    pending = ""
    pending_key = ""
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = _strip_comment(raw).strip()
        if pending_key:
            pending += " " + line
            if _array_closed(pending):
                current[pending_key] = _parse_value(pending.strip(), lineno)
                pending_key = pending = ""
            continue
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            current = _enter_array_table(root, line[2:-2].strip())
        elif line.startswith("[") and line.endswith("]"):
            current = _enter_table(root, line[1:-1].strip())
        elif "=" in line:
            key, _, value = line.partition("=")
            key, value = key.strip(), value.strip()
            if value.startswith("[") and not _array_closed(value):
                pending_key, pending = key, value
                continue
            current[key] = _parse_value(value, lineno)
        else:
            raise ValueError(f"toml fallback: cannot parse line {lineno}: {raw!r}")
    if pending_key:
        raise ValueError(f"toml fallback: unterminated array for {pending_key!r}")
    return root


def _strip_comment(line: str) -> str:
    out: list[str] = []
    in_str = False
    for ch in line:
        if ch == '"':
            in_str = not in_str
        if ch == "#" and not in_str:
            break
        out.append(ch)
    return "".join(out)


def _array_closed(fragment: str) -> bool:
    return fragment.count("[") <= fragment.count("]")


def _enter_table(root: dict[str, Any], dotted: str) -> dict[str, Any]:
    node = root
    for part in dotted.split("."):
        node = node.setdefault(part.strip(), {})
    return node


def _enter_array_table(root: dict[str, Any], dotted: str) -> dict[str, Any]:
    parts = [p.strip() for p in dotted.split(".")]
    node = root
    for part in parts[:-1]:
        node = node.setdefault(part, {})
    arr = node.setdefault(parts[-1], [])
    entry: dict[str, Any] = {}
    arr.append(entry)
    return entry


def _parse_value(value: str, lineno: int) -> Any:
    value = value.strip()
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        return value[1:-1]
    if value in ("true", "false"):
        return value == "true"
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_value(item.strip(), lineno)
            for item in inner.split(",")
            if item.strip()
        ]
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"toml fallback: unsupported value on line {lineno}: {value!r}"
        ) from None
