"""Lint engine: discovery, parsing, two-pass analysis, waivers, baseline.

The engine owns everything that is not rule-specific.  Linting is now two
passes over the target tree:

**Pass 1 — project model.**  Every file is parsed once; per-file symbol
tables, the import graph and a best-effort intra-project call graph are
assembled into a :class:`~tools.repro_lint.graph.ProjectModel` (optionally
loaded from an on-disk cache keyed by source content, since the model is
pure data).

**Pass 2 — rules.**  File rules (RL001–RL009) run against each file's
:class:`LintContext`; graph rules (RL010+) run once against a
:class:`GraphContext` wrapping the model and the architecture contract.
Diagnostics from either kind pass through the same waiver filter — a
``# repro-lint: disable=RLnnn`` on the flagged line suppresses a graph
finding exactly like a file finding — and then through the committed
baseline, so CI fails only on regressions.

When ``repro.obs`` is importable (PYTHONPATH includes ``src``), the engine
records ``lint.findings`` counters and a ``lint.graph_build_seconds``
sample against the active metrics registry; with the default no-op
registry this costs nothing.
"""

from __future__ import annotations

import ast
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from tools.repro_lint.astutil import ImportTable
from tools.repro_lint.baseline import Baseline
from tools.repro_lint.contracts import Contract, load_contract
from tools.repro_lint.diagnostics import (
    Diagnostic,
    count_by_severity,
    sort_diagnostics,
)
from tools.repro_lint.graph import (
    ProjectModel,
    build_project,
    content_key,
    load_cached_model,
    store_cached_model,
)
from tools.repro_lint.registry import (
    AnyRule,
    GraphRule,
    Rule,
    all_rules,
    is_graph_rule,
    rule_severity,
)
from tools.repro_lint.waivers import Waivers, parse_waivers

#: Directory names never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "node_modules", ".mypy_cache",
             ".ruff_cache", ".pytest_cache", "build", "dist"}


@dataclass
class LintContext:
    """Everything a file rule may inspect about one source file."""

    path: str  # as reported in diagnostics (relative when possible)
    tree: ast.Module
    source: str
    imports: ImportTable
    waivers: Waivers

    #: Posix-style path used for scope decisions (e.g. "is this library
    #: code under src/repro/?").  Always relative to the lint root when the
    #: file lies beneath it.
    posix_path: str = field(init=False)

    def __post_init__(self) -> None:
        self.posix_path = Path(self.path).as_posix()

    def in_package(self, *parts: str) -> bool:
        """True if the file lies under the given path fragment.

        ``ctx.in_package("src", "repro")`` matches ``src/repro/...`` whether
        the lint root was the repository root or ``src`` itself.
        """
        fragment = "/".join(parts)
        return (
            f"/{fragment}/" in f"/{self.posix_path}"
            or self.posix_path.startswith(fragment + "/")
        )

    def is_module(self, *parts: str) -> bool:
        """True if the file *is* the given module path suffix."""
        return self.posix_path.endswith("/".join(parts))

    def diagnostic(
        self, rule: AnyRule, node: ast.AST, message: Optional[str] = None
    ) -> Diagnostic:
        """Build a Diagnostic for ``node`` carrying the rule's fix hint."""
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=rule.code,
            message=message or rule.description,
            hint=rule.hint,
            severity=rule_severity(rule),
        )


@dataclass
class GraphContext:
    """Everything a graph rule may inspect about the whole program."""

    project: ProjectModel
    contract: Contract

    def diagnostic(
        self,
        rule: AnyRule,
        *,
        path: str,
        line: int,
        col: int = 0,
        message: Optional[str] = None,
        severity: Optional[str] = None,
    ) -> Diagnostic:
        return Diagnostic(
            path=path,
            line=line,
            col=col,
            code=rule.code,
            message=message or rule.description,
            hint=rule.hint,
            severity=severity or rule_severity(rule),
        )


@dataclass
class FileRecord:
    """One parsed target file (pass-1 product shared by both passes)."""

    path: str
    abs_path: Optional[Path]
    source: str
    tree: ast.Module
    imports: ImportTable
    waivers: Waivers


@dataclass
class LintResult:
    """Full outcome of a two-pass lint run."""

    diagnostics: list[Diagnostic]
    baselined: list[Diagnostic] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: int = 0
    model_stats: dict = field(default_factory=dict)
    graph_build_seconds: float = 0.0
    cache_state: str = "off"  # "off" | "hit" | "miss"

    def severity_counts(self) -> dict[str, int]:
        return count_by_severity(self.diagnostics)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    found: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                found.add(p)
        elif p.is_dir():
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.add(Path(dirpath) / name)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(found)


def _display_path(path: Path) -> str:
    """Prefer a path relative to the current directory for readability."""
    try:
        return str(path.resolve().relative_to(Path.cwd().resolve()))
    except ValueError:
        return str(path)


def _load_records(
    paths: Sequence[str | Path],
) -> tuple[list[FileRecord], list[Diagnostic]]:
    """Parse every target file once; syntax errors become diagnostics."""
    records: list[FileRecord] = []
    errors: list[Diagnostic] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        display = _display_path(path)
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            errors.append(Diagnostic(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="RL999",
                message=f"syntax error: {exc.msg}",
                hint="repro-lint only checks files that parse",
            ))
            continue
        records.append(FileRecord(
            path=display,
            abs_path=path,
            source=source,
            tree=tree,
            imports=ImportTable(tree),
            waivers=parse_waivers(display, source),
        ))
    return records, errors


def _build_or_load_model(
    records: list[FileRecord],
    contract: Contract,
    cache_dir: Optional[Path],
) -> tuple[ProjectModel, str]:
    """Assemble the project model, consulting the content-keyed cache."""
    if cache_dir is not None:
        key = content_key(
            ((r.path, r.source) for r in records),
            salt=f"contract:{contract.source_path}:"
                 f"{_contract_fingerprint(contract)}",
        )
        cached = load_cached_model(cache_dir, key)
        if cached is not None:
            return cached, "hit"
    model = build_project(
        (r.path, r.tree, r.abs_path) for r in records
    )
    if cache_dir is not None:
        store_cached_model(cache_dir, key, model)
        return model, "miss"
    return model, "off"


def _contract_fingerprint(contract: Contract) -> str:
    layers = ";".join(
        f"{layer.name}={','.join(layer.packages)}" for layer in contract.layers
    )
    return f"{contract.root}|{layers}|{','.join(contract.rl011_entry_points)}"


def _record_obs(result: LintResult) -> None:
    """Best-effort hook into repro.obs; a no-op without src on the path."""
    try:
        from repro.obs import get_registry
    except Exception:
        return
    reg = get_registry()
    from collections import Counter

    counts: Counter[tuple[str, str]] = Counter(
        (d.code, d.severity) for d in result.diagnostics
    )
    for (code, severity), n in sorted(counts.items()):
        reg.counter("lint.findings", n, rule=code, severity=severity)
    reg.gauge("lint.files_scanned", float(result.files_scanned))
    if result.model_stats:
        reg.gauge("lint.graph_modules", float(result.model_stats["modules"]))
        reg.gauge("lint.graph_import_edges",
                  float(result.model_stats["import_edges"]))
        reg.gauge("lint.graph_call_edges",
                  float(result.model_stats["call_edges"]))
    reg.observe("lint.graph_build_seconds", result.graph_build_seconds)


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> list[AnyRule]:
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        rules = [r for r in rules if r.code in wanted]
    if ignore is not None:
        unwanted = set(ignore)
        rules = [r for r in rules if r.code not in unwanted]
    return rules


def run_lint(
    paths: Sequence[str | Path],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    graph: bool = True,
    contract_path: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    cache_dir: Optional[Path] = None,
) -> LintResult:
    """Two-pass lint over files/directories; the full-featured entry point."""
    rules = _select_rules(select, ignore)
    frules: list[Rule] = [r for r in rules if not is_graph_rule(r)]
    grules: list[GraphRule] = [r for r in rules if is_graph_rule(r)]

    records, diags = _load_records(paths)
    parse_errors = len(diags)
    waivers_by_path = {r.path: r.waivers for r in records}
    for record in records:
        diags.extend(record.waivers.errors)

    # Pass 2a: file-local rules.
    for record in records:
        ctx = LintContext(
            path=record.path, tree=record.tree, source=record.source,
            imports=record.imports, waivers=record.waivers,
        )
        for rule in frules:
            for diag in rule.check(ctx):
                if not record.waivers.is_waived(diag.code, diag.line):
                    diags.append(diag)

    # Pass 1 + 2b: project model and graph rules.
    result = LintResult(diagnostics=[], files_scanned=len(records),
                        parse_errors=parse_errors)
    if graph and grules:
        t0 = time.perf_counter()
        contract = load_contract(contract_path)
        model, cache_state = _build_or_load_model(records, contract, cache_dir)
        result.graph_build_seconds = time.perf_counter() - t0
        result.cache_state = cache_state
        result.model_stats = model.stats()
        gctx = GraphContext(project=model, contract=contract)
        for grule in grules:
            for diag in grule.check_project(gctx):
                waivers = waivers_by_path.get(diag.path)
                if waivers is not None and waivers.is_waived(diag.code, diag.line):
                    continue
                diags.append(diag)

    diags = sort_diagnostics(diags)
    if baseline is not None:
        diags, baselined = baseline.split(diags)
        result.baselined = baselined
    result.diagnostics = diags
    _record_obs(result)
    return result


# --------------------------------------------------------------------- #
# Back-compatible entry points.
# --------------------------------------------------------------------- #


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[AnyRule]] = None,
) -> list[Diagnostic]:
    """Lint a source string with the file rules (the unit-test entry point).

    Graph rules need a whole project; use
    :func:`tools.repro_lint.graph.build_project_from_sources` plus
    :class:`GraphContext` to exercise them against in-memory modules.
    """
    chosen = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in chosen if not is_graph_rule(r)]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="RL999",
                message=f"syntax error: {exc.msg}",
                hint="repro-lint only checks files that parse",
            )
        ]
    waivers = parse_waivers(path, source)
    ctx = LintContext(
        path=path, tree=tree, source=source,
        imports=ImportTable(tree), waivers=waivers,
    )
    diags: list[Diagnostic] = list(waivers.errors)
    for rule in file_rules:
        for diag in rule.check(ctx):
            if not waivers.is_waived(diag.code, diag.line):
                diags.append(diag)
    return sort_diagnostics(diags)


def lint_file(path: Path, rules: Optional[Iterable[AnyRule]] = None) -> list[Diagnostic]:
    """Lint one file from disk with the file rules."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=_display_path(path), rules=rules)


def lint_paths(
    paths: Sequence[str | Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Lint files/directories with the full two-pass analysis."""
    return run_lint(paths, select=select, ignore=ignore).diagnostics
