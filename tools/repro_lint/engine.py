"""Lint engine: file discovery, parsing, rule dispatch, waiver filtering.

The engine owns everything that is not rule-specific: walking the target
paths, building one :class:`LintContext` per file (AST + import table +
waivers), running each enabled rule, and dropping diagnostics whose line
carries a matching waiver.  Rules therefore never need to think about
waivers, file systems or syntax errors.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from tools.repro_lint.astutil import ImportTable
from tools.repro_lint.diagnostics import Diagnostic, sort_diagnostics
from tools.repro_lint.registry import Rule, all_rules
from tools.repro_lint.waivers import Waivers, parse_waivers

#: Directory names never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "node_modules", ".mypy_cache",
             ".ruff_cache", ".pytest_cache", "build", "dist"}


@dataclass
class LintContext:
    """Everything a rule may inspect about one source file."""

    path: str  # as reported in diagnostics (relative when possible)
    tree: ast.Module
    source: str
    imports: ImportTable
    waivers: Waivers

    #: Posix-style path used for scope decisions (e.g. "is this library
    #: code under src/repro/?").  Always relative to the lint root when the
    #: file lies beneath it.
    posix_path: str = field(init=False)

    def __post_init__(self) -> None:
        self.posix_path = Path(self.path).as_posix()

    def in_package(self, *parts: str) -> bool:
        """True if the file lies under the given path fragment.

        ``ctx.in_package("src", "repro")`` matches ``src/repro/...`` whether
        the lint root was the repository root or ``src`` itself.
        """
        fragment = "/".join(parts)
        return (
            f"/{fragment}/" in f"/{self.posix_path}"
            or self.posix_path.startswith(fragment + "/")
        )

    def is_module(self, *parts: str) -> bool:
        """True if the file *is* the given module path suffix."""
        return self.posix_path.endswith("/".join(parts))

    def diagnostic(
        self, rule: Rule, node: ast.AST, message: Optional[str] = None
    ) -> Diagnostic:
        """Build a Diagnostic for ``node`` carrying the rule's fix hint."""
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=rule.code,
            message=message or rule.description,
            hint=rule.hint,
        )


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    found: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                found.add(p)
        elif p.is_dir():
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.add(Path(dirpath) / name)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(found)


def _display_path(path: Path) -> str:
    """Prefer a path relative to the current directory for readability."""
    try:
        return str(path.resolve().relative_to(Path.cwd().resolve()))
    except ValueError:
        return str(path)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Rule]] = None,
) -> list[Diagnostic]:
    """Lint a source string (the unit-test entry point)."""
    rules = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="RL999",
                message=f"syntax error: {exc.msg}",
                hint="repro-lint only checks files that parse",
            )
        ]
    waivers = parse_waivers(path, source)
    ctx = LintContext(
        path=path, tree=tree, source=source,
        imports=ImportTable(tree), waivers=waivers,
    )
    diags: list[Diagnostic] = list(waivers.errors)
    for rule in rules:
        for diag in rule.check(ctx):
            if not waivers.is_waived(diag.code, diag.line):
                diags.append(diag)
    return sort_diagnostics(diags)


def lint_file(path: Path, rules: Optional[Iterable[Rule]] = None) -> list[Diagnostic]:
    """Lint one file from disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=_display_path(path), rules=rules)


def lint_paths(
    paths: Sequence[str | Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Lint files/directories; optionally filter the rule set by code."""
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        rules = [r for r in rules if r.code in wanted]
    if ignore is not None:
        unwanted = set(ignore)
        rules = [r for r in rules if r.code not in unwanted]
    diags: list[Diagnostic] = []
    for path in iter_python_files(paths):
        diags.extend(lint_file(path, rules=rules))
    return sort_diagnostics(diags)
