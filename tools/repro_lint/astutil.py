"""Shared AST helpers for repro-lint rules.

The central facility is the *import resolver*: rules never pattern-match on
surface spellings like ``np.random.seed`` directly, because the same call can
be written ``numpy.random.seed``, ``from numpy import random; random.seed``
or ``from numpy.random import seed; seed``.  :class:`ImportTable` records a
module's import bindings and :func:`resolve_call` flattens a call's function
expression to its fully-qualified dotted name whenever that name is rooted in
an imported module.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class ImportTable:
    """Maps local names to the fully-qualified dotted names they import."""

    def __init__(self, tree: ast.Module) -> None:
        self.bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a`` -> ``a``; ``import a.b as c``
                    # binds ``c`` -> ``a.b``.
                    target = alias.name if alias.asname else local
                    self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Fully-qualified dotted name of ``node`` if rooted in an import."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.bindings.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def resolve_call(call: ast.Call, imports: ImportTable) -> Optional[str]:
    """Dotted name of the function being called, when import-rooted."""
    return imports.resolve(call.func)


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES):
            yield node


def function_param_names(func: FunctionNode) -> list[str]:
    """All positional, keyword-only and variadic parameter names."""
    args = func.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return params


def name_appears_in(node: ast.AST, name: str) -> bool:
    """True if a ``Name(name)`` load occurs anywhere inside ``node``."""
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def call_name(call: ast.Call) -> Optional[str]:
    """Trailing identifier of the call target (``a.b.c()`` -> ``c``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
