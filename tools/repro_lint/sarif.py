"""SARIF 2.1.0 output for GitHub code scanning.

Renders a lint run as one SARIF ``run`` with the registered rules in
``tool.driver.rules`` and one ``result`` per diagnostic, shaped the way
GitHub's code-scanning upload expects: ``ruleId``, ``level``
(error/warning/note), ``message.text`` and a ``physicalLocation`` with a
relative ``artifactLocation.uri`` plus a ``region``.  Only the schema
subset GitHub consumes is emitted — no taxonomies, no graphs.
"""

from __future__ import annotations

import json
from typing import Sequence

from tools.repro_lint.diagnostics import SARIF_LEVELS, Diagnostic
from tools.repro_lint.registry import AnyRule, rule_severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule: AnyRule) -> dict:
    descriptor = {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {
            "level": SARIF_LEVELS[rule_severity(rule)],
        },
    }
    if rule.hint:
        descriptor["help"] = {"text": rule.hint}
    return descriptor


def _result(diag: Diagnostic) -> dict:
    return {
        "ruleId": diag.code,
        "level": SARIF_LEVELS[diag.severity],
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(diag.line, 1),
                        "startColumn": diag.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(
    diags: Sequence[Diagnostic],
    rules: Sequence[AnyRule],
    *,
    tool_version: str,
) -> dict:
    """Build the SARIF document as a plain dict."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": tool_version,
                        "rules": [_rule_descriptor(r) for r in rules],
                    }
                },
                "results": [_result(d) for d in diags],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def to_sarif_json(
    diags: Sequence[Diagnostic],
    rules: Sequence[AnyRule],
    *,
    tool_version: str,
) -> str:
    return json.dumps(
        to_sarif(diags, rules, tool_version=tool_version),
        indent=2,
        sort_keys=True,
    )
