"""Command-line front end: ``python -m tools.repro_lint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import Optional, Sequence

from tools.repro_lint.engine import lint_paths
from tools.repro_lint.registry import all_rules

DEFAULT_PATHS = ["src", "tests", "benchmarks", "scripts"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=(
            "AST-based invariant checker for the BG/L failure-predictor "
            "reproduction (explicit RNG threading, replayable time, sorted "
            "window queries, seconds-only windows, validated fractions)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=DEFAULT_PATHS,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--no-hints", action="store_true",
        help="omit fix hints from text output",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print a per-rule finding count after the diagnostics",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[list[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0

    try:
        diags = lint_paths(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        for diag in diags:
            print(diag.to_json())
    else:
        for diag in diags:
            print(diag.format(show_hint=not args.no_hints))

    if args.statistics and diags:
        counts = Counter(d.code for d in diags)
        print()
        for code in sorted(counts):
            print(f"{code}: {counts[code]}")

    if args.format == "text":
        n = len(diags)
        print(f"repro-lint: {n} finding{'s' if n != 1 else ''}"
              if n else "repro-lint: clean")
    return 1 if diags else 0
