"""Command-line front end: ``python -m tools.repro_lint [paths...]``.

Exit codes: 0 clean at the failing tier, 1 findings at/above ``--fail-on``
(default: error), 2 usage or I/O error.  ``--baseline`` filters previously
accepted findings so CI fails only on regressions; ``--update-baseline``
rewrites the baseline from the current findings instead of failing.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Optional, Sequence

import tools.repro_lint as pkg
from tools.repro_lint.baseline import DEFAULT_BASELINE_PATH, Baseline
from tools.repro_lint.diagnostics import SEVERITIES
from tools.repro_lint.engine import run_lint
from tools.repro_lint.registry import (
    all_rules,
    is_graph_rule,
    rule_severity,
)
from tools.repro_lint.sarif import to_sarif_json

DEFAULT_PATHS = ["src", "tests", "benchmarks", "scripts", "tools"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=(
            "Two-pass whole-program invariant checker for the BG/L "
            "failure-predictor reproduction: per-file rules (RL001-RL009) "
            "plus import/call-graph rules (RL010-RL013) for layering, "
            "determinism taint, process-boundary safety and async blocking."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=DEFAULT_PATHS,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text; json is one object per line)",
    )
    parser.add_argument(
        "--no-hints", action="store_true",
        help="omit fix hints from text output",
    )
    parser.add_argument(
        "--no-graph", action="store_true",
        help="skip the whole-program pass (file rules only)",
    )
    parser.add_argument(
        "--fail-on", choices=SEVERITIES, default="error", metavar="TIER",
        help=(
            "lowest severity tier that fails the run: error, warn or info "
            "(default: error)"
        ),
    )
    parser.add_argument(
        "--contract", metavar="FILE", type=Path, default=None,
        help="architecture contract TOML (default: tools/repro_lint/contracts.toml)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path, default=None,
        help=(
            "baseline JSON of accepted findings; matching findings no "
            f"longer fail the run (committed copy: {DEFAULT_BASELINE_PATH})"
        ),
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", type=Path, default=None,
        help="cache the pass-1 project model here, keyed on source content",
    )
    parser.add_argument(
        "--sarif-file", metavar="FILE", type=Path, default=None,
        help="additionally write SARIF 2.1.0 output to FILE",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print a run summary (files, graph size, build time, tiers)",
    )
    parser.add_argument(
        "--emit-metrics", metavar="FILE", type=Path, default=None,
        help="write the run summary as JSON to FILE",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print a per-rule finding count after the diagnostics",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[list[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def _failing_tiers(fail_on: str) -> set[str]:
    """Severities at or above the threshold (error is the highest tier)."""
    return set(SEVERITIES[: SEVERITIES.index(fail_on) + 1])


def _run_summary(result, *, fresh: int, baselined: int) -> dict:
    return {
        "files_scanned": result.files_scanned,
        "parse_errors": result.parse_errors,
        "findings": fresh,
        "baselined": baselined,
        "severity_counts": result.severity_counts(),
        "graph": result.model_stats,
        "graph_build_seconds": round(result.graph_build_seconds, 4),
        "cache": result.cache_state,
    }


def _print_stats(summary: dict) -> None:
    print()
    print(f"files scanned:       {summary['files_scanned']}")
    if summary["graph"]:
        graph = summary["graph"]
        print(f"project model:       {graph['modules']} modules, "
              f"{graph['functions']} functions, "
              f"{graph['import_edges']} import edges, "
              f"{graph['call_edges']} call edges")
        print(f"graph build:         {summary['graph_build_seconds']:.3f}s "
              f"(cache: {summary['cache']})")
    tiers = ", ".join(
        f"{sev}={summary['severity_counts'].get(sev, 0)}" for sev in SEVERITIES
    )
    print(f"findings by tier:    {tiers}")
    if summary["baselined"]:
        print(f"baselined findings:  {summary['baselined']}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = "graph" if is_graph_rule(rule) else "file"
            print(f"{rule.code}  [{scope}/{rule_severity(rule)}] "
                  f"{rule.name}: {rule.description}")
        return 0

    baseline: Optional[Baseline] = None
    if args.baseline is not None and not args.update_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            print(f"repro-lint: error: no baseline at {args.baseline} "
                  f"(create it with --update-baseline)", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2

    try:
        result = run_lint(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            graph=not args.no_graph,
            contract_path=args.contract,
            baseline=baseline,
            cache_dir=args.cache_dir,
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    diags = result.diagnostics

    if args.update_baseline:
        if args.baseline is None:
            print("repro-lint: error: --update-baseline requires --baseline",
                  file=sys.stderr)
            return 2
        Baseline.from_diagnostics(diags).save(args.baseline)
        print(f"repro-lint: baseline written: {args.baseline} "
              f"({len(diags)} finding{'s' if len(diags) != 1 else ''})")
        return 0

    selected = _split_codes(args.select)
    ignored = set(_split_codes(args.ignore) or ())
    rules_for_output = [
        r for r in all_rules()
        if (selected is None or r.code in selected) and r.code not in ignored
    ]

    if args.sarif_file is not None:
        args.sarif_file.parent.mkdir(parents=True, exist_ok=True)
        args.sarif_file.write_text(
            to_sarif_json(diags, rules_for_output, tool_version=pkg.__version__)
            + "\n",
            "utf-8",
        )

    if args.format == "sarif":
        print(to_sarif_json(diags, rules_for_output, tool_version=pkg.__version__))
    elif args.format == "json":
        for diag in diags:
            print(diag.to_json())
    else:
        for diag in diags:
            print(diag.format(show_hint=not args.no_hints))

    if args.statistics and diags:
        counts = Counter(d.code for d in diags)
        print()
        for code in sorted(counts):
            print(f"{code}: {counts[code]}")

    summary = _run_summary(
        result, fresh=len(diags), baselined=len(result.baselined)
    )
    if args.stats:
        _print_stats(summary)
    if args.emit_metrics is not None:
        args.emit_metrics.parent.mkdir(parents=True, exist_ok=True)
        args.emit_metrics.write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n", "utf-8"
        )

    if args.format == "text":
        n = len(diags)
        tail = ""
        if result.baselined:
            tail = f" ({len(result.baselined)} baselined)"
        print(f"repro-lint: {n} finding{'s' if n != 1 else ''}{tail}"
              if n else f"repro-lint: clean{tail}")

    failing = _failing_tiers(args.fail_on)
    return 1 if any(d.severity in failing for d in diags) else 0
