"""Plugin-style rule registry.

A rule is a class with ``code``/``name``/``description``/``hint`` attributes
and a ``check(ctx)`` generator; decorating it with :func:`register` makes it
discoverable by the engine and the CLI.  Rules live one-per-module under
``tools/repro_lint/rules`` and registration happens on import, so adding a
checker is: drop a module in ``rules/``, import it from ``rules/__init__``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Protocol, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from tools.repro_lint.diagnostics import Diagnostic
    from tools.repro_lint.engine import LintContext


class Rule(Protocol):
    """Interface every registered checker implements."""

    code: str
    name: str
    description: str
    hint: str

    def check(self, ctx: "LintContext") -> Iterator["Diagnostic"]: ...


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its code."""
    rule = cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules in code order (imports the bundled rule modules)."""
    # Importing the package triggers @register for every bundled rule.
    import tools.repro_lint.rules  # noqa: F401

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    import tools.repro_lint.rules  # noqa: F401

    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
