"""Plugin-style rule registry.

Two kinds of checker live here:

*File rules* (RL001–RL009) implement ``check(ctx)`` against one parsed
file.  *Graph rules* (RL010+) implement ``check_project(gctx)`` against
the whole-program model built in pass 1 — import graph, call graph and
per-function facts — and cannot see raw ASTs at all, which is what makes
the model cacheable.

Either kind is a class with ``code``/``name``/``description``/``hint``/
``severity`` attributes; decorating it with :func:`register` makes it
discoverable by the engine and the CLI.  Rules live one-per-module under
``tools/repro_lint/rules`` and registration happens on import, so adding a
checker is: drop a module in ``rules/``, import it from ``rules/__init__``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Protocol, Type, Union, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from tools.repro_lint.diagnostics import Diagnostic
    from tools.repro_lint.engine import GraphContext, LintContext


@runtime_checkable
class Rule(Protocol):
    """Interface every registered per-file checker implements."""

    code: str
    name: str
    description: str
    hint: str

    def check(self, ctx: "LintContext") -> Iterator["Diagnostic"]: ...


@runtime_checkable
class GraphRule(Protocol):
    """Interface every whole-program checker implements."""

    code: str
    name: str
    description: str
    hint: str

    def check_project(self, gctx: "GraphContext") -> Iterator["Diagnostic"]: ...


AnyRule = Union[Rule, GraphRule]

_REGISTRY: dict[str, AnyRule] = {}


def register(cls: Type[AnyRule]) -> Type[AnyRule]:
    """Class decorator: instantiate and register a rule by its code."""
    rule = cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return cls


def is_graph_rule(rule: AnyRule) -> bool:
    return hasattr(rule, "check_project")


def rule_severity(rule: AnyRule) -> str:
    """Default severity tier a rule emits at (rules may emit lower)."""
    return getattr(rule, "severity", "error")


def all_rules() -> list[AnyRule]:
    """Registered rules in code order (imports the bundled rule modules)."""
    # Importing the package triggers @register for every bundled rule.
    import tools.repro_lint.rules  # noqa: F401

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def file_rules() -> list[Rule]:
    return [r for r in all_rules() if not is_graph_rule(r)]


def graph_rules() -> list[GraphRule]:
    return [r for r in all_rules() if is_graph_rule(r)]


def get_rule(code: str) -> AnyRule:
    import tools.repro_lint.rules  # noqa: F401

    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
