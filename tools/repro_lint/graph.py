"""The project model: modules, import graph and intra-project call graph.

Pass 1 of the whole-program analyzer assembles one :class:`ProjectModel`
from the per-file :class:`~tools.repro_lint.symbols.ModuleInfo` records.
The model then offers the queries the graph rules are written against:

* ``import_edges()`` — every module-to-module import with its source
  location (package-level aggregation is the layering rule's job);
* ``resolve(dotted)`` — canonicalize a provisional dotted call target to a
  known project function, following ``from x import y`` re-export chains
  (package ``__init__`` facades) up to a fixed depth;
* ``callers_of`` / reverse-BFS helpers — interprocedural reachability for
  the taint and async-blocking rules.

The model is plain data end to end, so :meth:`to_dict`/:meth:`from_dict`
round-trip through JSON and the whole pass-1 product can be cached on disk
keyed by source content (see ``engine.py``).
"""

from __future__ import annotations

import ast
import json
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from tools.repro_lint.symbols import (
    FunctionInfo,
    ImportEdge,
    ModuleInfo,
    extract_module,
)

MODEL_FORMAT_VERSION = 1

#: How many ``from x import y`` re-export hops to follow when
#: canonicalizing a call target (guards against pathological chains).
_MAX_REEXPORT_HOPS = 8


@dataclass
class ResolvedImport:
    """One import edge with both endpoints known to the model."""

    src_module: str
    dst_module: str
    line: int
    col: int
    typing_only: bool


@dataclass
class ProjectModel:
    """Whole-program view assembled from per-module symbol tables."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    #: qualname -> FunctionInfo, across every module.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: qualname -> qualnames of project functions calling it.
    _reverse_calls: dict[str, list[str]] = field(default_factory=dict)
    _module_names_sorted: list[str] = field(default_factory=list)
    finalized: bool = False

    # -- construction --------------------------------------------------- #

    def add_module(self, mod: ModuleInfo) -> None:
        self.modules[mod.name] = mod
        self.finalized = False

    def finalize(self) -> None:
        """Index functions and resolve call edges; idempotent."""
        self.functions = {}
        for mod in self.modules.values():
            self.functions.update(mod.function_infos)
        self._module_names_sorted = sorted(self.modules)
        for fn in self.functions.values():
            seen: set[str] = set()
            fn.resolved_callees = []
            for call in fn.calls:
                if call.target is None:
                    continue
                resolved = self.resolve(call.target)
                if resolved is not None and resolved.qualname not in seen:
                    seen.add(resolved.qualname)
                    fn.resolved_callees.append(resolved.qualname)
        self._reverse_calls = {}
        for fn in self.functions.values():
            for callee in fn.resolved_callees:
                self._reverse_calls.setdefault(callee, []).append(fn.qualname)
        self.finalized = True

    # -- module / symbol queries ---------------------------------------- #

    def module_of_path(self, path: str) -> Optional[ModuleInfo]:
        for mod in self.modules.values():
            if mod.path == path:
                return mod
        return None

    def _longest_module_prefix(
        self, parts: list[str]
    ) -> tuple[Optional[ModuleInfo], list[str]]:
        for cut in range(len(parts), 0, -1):
            name = ".".join(parts[:cut])
            mod = self.modules.get(name)
            if mod is not None:
                return mod, parts[cut:]
        return None, parts

    def resolve(
        self, dotted: str, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Canonical project function for a provisional dotted target.

        Follows module ``__init__`` re-exports (``from repro.mining.rules
        import generate_rules`` makes ``repro.mining.generate_rules``
        resolve to the real definition).  Anything that does not land on a
        known project function — external libraries, dynamic attributes —
        returns ``None``.
        """
        if _depth > _MAX_REEXPORT_HOPS:
            return None
        direct = self.functions.get(dotted)
        if direct is not None:
            return direct
        parts = dotted.split(".")
        mod, rest = self._longest_module_prefix(parts)
        if mod is None or not rest:
            return None
        if len(rest) == 1:
            sym = rest[0]
            q = mod.functions.get(sym)
            if q is not None:
                return self.functions.get(q)
            if sym in mod.classes:
                init = mod.classes[sym].get("__init__")
                return self.functions.get(init) if init else None
            bound = mod.bindings.get(sym) or mod.aliases.get(sym)
            if bound is not None and bound != dotted:
                return self.resolve(bound, _depth + 1)
            return None
        if len(rest) == 2:
            cls, meth = rest
            if cls in mod.classes:
                q = mod.classes[cls].get(meth)
                return self.functions.get(q) if q else None
            bound = mod.bindings.get(cls) or mod.aliases.get(cls)
            if bound is not None:
                return self.resolve(f"{bound}.{meth}", _depth + 1)
        return None

    # -- import graph --------------------------------------------------- #

    def import_edges(self) -> Iterator[tuple[ModuleInfo, ImportEdge]]:
        """Every raw import edge with its owning module, sorted."""
        for name in self._module_names_sorted or sorted(self.modules):
            mod = self.modules[name]
            for edge in mod.imports:
                yield mod, edge

    def project_import_edges(self) -> Iterator[ResolvedImport]:
        """Import edges whose *target* is (a prefix of) a project module.

        ``from repro.bgl import cmcs`` resolves to target module
        ``repro.bgl`` — package-level rules aggregate further themselves.
        """
        for mod, edge in self.import_edges():
            target = self._known_module_prefix(edge.target)
            if target is None or target == mod.name:
                continue
            yield ResolvedImport(
                src_module=mod.name, dst_module=target,
                line=edge.line, col=edge.col, typing_only=edge.typing_only,
            )

    def _known_module_prefix(self, dotted: str) -> Optional[str]:
        parts = dotted.split(".")
        mod, _rest = self._longest_module_prefix(parts)
        return mod.name if mod is not None else None

    # -- call graph ----------------------------------------------------- #

    def callers_of(self, qualname: str) -> list[str]:
        return self._reverse_calls.get(qualname, [])

    def reverse_reachable(
        self, roots: Iterable[str], *, max_depth: int = 64
    ) -> dict[str, tuple[str, ...]]:
        """Map of function -> witness path (root-first) for every function
        from which any ``root`` is reachable through resolved calls."""
        paths: dict[str, tuple[str, ...]] = {}
        frontier: list[tuple[str, tuple[str, ...]]] = [
            (r, (r,)) for r in roots if r in self.functions
        ]
        depth = 0
        seen: set[str] = {r for r, _ in frontier}
        while frontier and depth < max_depth:
            nxt: list[tuple[str, tuple[str, ...]]] = []
            for qual, path in frontier:
                paths.setdefault(qual, path)
                for caller in self.callers_of(qual):
                    if caller not in seen:
                        seen.add(caller)
                        nxt.append((caller, (caller,) + path))
            frontier = nxt
            depth += 1
        return paths

    def forward_reach(
        self, root: str, *, through: Optional[set[str]] = None,
        max_depth: int = 64,
    ) -> dict[str, tuple[str, ...]]:
        """Map of reachable function -> call path from ``root`` (inclusive).

        ``through`` restricts which *intermediate* functions may be
        traversed (e.g. "sync functions only" for the async rule); the
        root and terminal nodes are always admitted.
        """
        out: dict[str, tuple[str, ...]] = {root: (root,)}
        frontier = [root]
        depth = 0
        while frontier and depth < max_depth:
            nxt: list[str] = []
            for qual in frontier:
                fn = self.functions.get(qual)
                if fn is None:
                    continue
                if qual != root and through is not None and qual not in through:
                    continue  # terminal: do not traverse further
                for callee in fn.resolved_callees:
                    if callee not in out:
                        out[callee] = out[qual] + (callee,)
                        nxt.append(callee)
            frontier = nxt
            depth += 1
        return out

    # -- stats / serialization ------------------------------------------ #

    def stats(self) -> dict[str, int]:
        import_edges = sum(len(m.imports) for m in self.modules.values())
        call_edges = sum(
            len(f.resolved_callees) for f in self.functions.values()
        )
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "import_edges": import_edges,
            "call_edges": call_edges,
        }

    def to_dict(self) -> dict:
        return {
            "format_version": MODEL_FORMAT_VERSION,
            "modules": {
                name: mod.to_dict() for name, mod in sorted(self.modules.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProjectModel":
        if data.get("format_version") != MODEL_FORMAT_VERSION:
            raise ValueError(
                f"project-model format {data.get('format_version')!r} "
                f"!= {MODEL_FORMAT_VERSION}"
            )
        model = cls()
        for name, mod in data["modules"].items():
            info = ModuleInfo.from_dict(mod)
            assert info.name == name
            model.add_module(info)
        model.finalize()
        return model


def build_project(
    files: Iterable[tuple[str, ast.Module, Optional[Path]]],
) -> ProjectModel:
    """Assemble and finalize a model from (display_path, tree, abs_path)."""
    model = ProjectModel()
    for display_path, tree, abs_path in files:
        model.add_module(
            extract_module(display_path, tree, abs_path=abs_path)
        )
    model.finalize()
    return model


def build_project_from_sources(sources: dict[str, str]) -> ProjectModel:
    """Test/entry helper: {module_name: source} -> finalized model.

    Module names are taken verbatim (no filesystem walk), with paths
    synthesized as ``<name>.py``.
    """
    model = ProjectModel()
    for name, source in sources.items():
        tree = ast.parse(source, filename=f"{name}.py")
        path = name.replace(".", "/") + ".py"
        model.add_module(extract_module(path, tree, name=name))
    model.finalize()
    return model


def content_key(
    entries: Iterable[tuple[str, str]], *, salt: str = ""
) -> str:
    """Cache key over (display_path, source) pairs plus a salt string."""
    h = hashlib.sha256()
    h.update(f"v{MODEL_FORMAT_VERSION}|{salt}|".encode())
    for path, source in sorted(entries):
        h.update(path.encode())
        h.update(b"\x00")
        h.update(hashlib.sha256(source.encode()).digest())
    return h.hexdigest()


def load_cached_model(cache_dir: Path, key: str) -> Optional[ProjectModel]:
    path = cache_dir / f"model-{key}.json"
    if not path.is_file():
        return None
    try:
        return ProjectModel.from_dict(json.loads(path.read_text("utf-8")))
    except (ValueError, KeyError, json.JSONDecodeError):
        return None  # stale/corrupt cache entries are rebuilt, not fatal


def store_cached_model(cache_dir: Path, key: str, model: ProjectModel) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"model-{key}.json"
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(model.to_dict(), sort_keys=True), "utf-8")
    tmp.replace(path)
