"""repro-lint: AST-based invariant checks for the BG/L predictor stack.

The reproduction's correctness depends on conventions a type checker cannot
see: explicit RNG threading, replayable (log-derived) time, sorted arrays
under every ``searchsorted``, seconds-only window arithmetic and validated
fraction parameters.  This package machine-checks them.  See
``docs/static_analysis.md`` for the rule catalogue and waiver syntax.

Programmatic use::

    from tools.repro_lint import lint_paths, lint_source
    findings = lint_paths(["src", "tests"])
"""

from tools.repro_lint.baseline import Baseline
from tools.repro_lint.contracts import Contract, load_contract
from tools.repro_lint.diagnostics import Diagnostic, sort_diagnostics
from tools.repro_lint.engine import (
    GraphContext,
    LintContext,
    LintResult,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    run_lint,
)
from tools.repro_lint.graph import ProjectModel, build_project
from tools.repro_lint.registry import (
    GraphRule,
    Rule,
    all_rules,
    get_rule,
    register,
)

__version__ = "2.0.0"

__all__ = [
    "Baseline",
    "Contract",
    "Diagnostic",
    "GraphContext",
    "GraphRule",
    "LintContext",
    "LintResult",
    "ProjectModel",
    "Rule",
    "all_rules",
    "build_project",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_contract",
    "register",
    "run_lint",
    "sort_diagnostics",
    "__version__",
]
