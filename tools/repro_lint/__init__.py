"""repro-lint: AST-based invariant checks for the BG/L predictor stack.

The reproduction's correctness depends on conventions a type checker cannot
see: explicit RNG threading, replayable (log-derived) time, sorted arrays
under every ``searchsorted``, seconds-only window arithmetic and validated
fraction parameters.  This package machine-checks them.  See
``docs/static_analysis.md`` for the rule catalogue and waiver syntax.

Programmatic use::

    from tools.repro_lint import lint_paths, lint_source
    findings = lint_paths(["src", "tests"])
"""

from tools.repro_lint.diagnostics import Diagnostic, sort_diagnostics
from tools.repro_lint.engine import (
    LintContext,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from tools.repro_lint.registry import Rule, all_rules, get_rule, register

__version__ = "1.0.0"

__all__ = [
    "Diagnostic",
    "LintContext",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "sort_diagnostics",
    "__version__",
]
