"""Tests for repro.taxonomy.categories."""

from repro.taxonomy.categories import CATEGORY_ORDER, MainCategory


def test_eight_categories():
    assert len(MainCategory) == 8


def test_order_matches_paper_tables():
    assert [c.value for c in CATEGORY_ORDER] == [
        "application",
        "iostream",
        "kernel",
        "memory",
        "midplane",
        "network",
        "nodecard",
        "other",
    ]


def test_order_is_complete():
    assert set(CATEGORY_ORDER) == set(MainCategory)
