"""Tests for repro.taxonomy.classifier."""

import pytest

from repro.ras.fields import Facility
from repro.ras.store import EventStore
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.classifier import OTHER_FALLBACK, TaxonomyClassifier
from repro.taxonomy.subcategories import CATALOG
from tests.conftest import make_event


@pytest.fixture(scope="module")
def clf():
    return TaxonomyClassifier()


def test_every_template_classifies_to_its_subcategory(clf):
    for sc in CATALOG:
        for template in sc.templates:
            assert clf.classify(template) == sc.name


def test_classification_case_insensitive(clf):
    sc = CATALOG[0]
    assert clf.classify(sc.templates[0].upper()) == sc.name


def test_unknown_text_falls_back(clf):
    assert clf.classify("completely unknown gibberish 123") == OTHER_FALLBACK
    assert clf.classify_entry("zzz") is None


def test_longest_pattern_wins(clf):
    # A message containing both a short and a longer known phrase must map
    # to the longer (more specific) one.
    long_sc = max(CATALOG, key=lambda sc: len(sc.pattern))
    short_sc = min(CATALOG, key=lambda sc: len(sc.pattern))
    combined = f"{short_sc.pattern} ; {long_sc.pattern}"
    assert clf.classify(combined) == long_sc.name


def test_fallback_category_by_facility(clf):
    assert clf.fallback_category(Facility.APP) is MainCategory.APPLICATION
    assert clf.fallback_category(Facility.DISCOVERY) is MainCategory.NODECARD
    assert clf.fallback_category(Facility.BGLMASTER) is MainCategory.OTHER


def test_fallback_category_io_node_kernel(clf):
    # KERNEL-facility messages from an I/O node concern I/O streams.
    assert (
        clf.fallback_category(Facility.KERNEL, "R00-M0-N00-I00")
        is MainCategory.IOSTREAM
    )
    assert (
        clf.fallback_category(Facility.KERNEL, "R00-M0-N00-C00")
        is MainCategory.KERNEL
    )
    # Invalid location degrades gracefully.
    assert clf.fallback_category(Facility.KERNEL, "???") is MainCategory.KERNEL


def test_category_of_label(clf):
    assert clf.category_of_label("torusFailure") is MainCategory.NETWORK
    assert clf.category_of_label(OTHER_FALLBACK) is MainCategory.OTHER


def test_label_is_fatal(clf):
    assert clf.label_is_fatal("socketReadFailure")
    assert not clf.label_is_fatal("timerInterruptInfo")
    assert not clf.label_is_fatal(OTHER_FALLBACK)


def test_classify_store_labels_all_rows(clf, tiny_store):
    labeled = clf.classify_store(tiny_store)
    assert labeled.subcat_of(3) == "loadProgramFailure"
    assert labeled.subcat_of(4) == "fanSpeedWarning"
    assert labeled.subcat_of(0) == OTHER_FALLBACK  # "alpha msg" unknown


def test_classify_store_empty(clf):
    labeled = clf.classify_store(EventStore.empty())
    assert len(labeled) == 0


def test_classify_store_interned_entries_classified_once(clf):
    # 1000 rows sharing one entry string: classification must be cheap and
    # produce identical labels.
    events = [
        make_event(time=i, entry="dma transfer error: descriptor retried")
        for i in range(1000)
    ]
    labeled = clf.classify_store(EventStore.from_events(events))
    assert set(labeled.subcat_counts()) == {"dmaError"}


def test_main_category_ids(clf, tiny_store):
    labeled = clf.classify_store(tiny_store)
    ids = clf.main_category_ids(labeled)
    cats = list(MainCategory)
    assert cats[ids[3]] is MainCategory.APPLICATION
    assert cats[ids[4]] is MainCategory.OTHER


def test_main_category_ids_requires_classified(clf, tiny_store):
    with pytest.raises(ValueError, match="unclassified"):
        clf.main_category_ids(tiny_store)


def test_generated_log_classification_coverage(clf, small_anl_log):
    """Every generated raw record classifies to a real subcategory."""
    labeled = clf.classify_store(small_anl_log.raw)
    counts = labeled.subcat_counts()
    assert OTHER_FALLBACK not in counts
    assert sum(counts.values()) == len(small_anl_log.raw)
