"""Tests for repro.taxonomy.subcategories (Table 3 catalog)."""

import pytest

from repro.ras.fields import Severity
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.subcategories import (
    CATALOG,
    FATAL_SUBCATS,
    NONFATAL_SUBCATS,
    Subcategory,
    by_category,
    by_name,
    fatal_names_by_category,
    validate_catalog,
)


def test_catalog_validates():
    validate_catalog()


def test_catalog_has_101_subcategories():
    assert len(CATALOG) == 101


@pytest.mark.parametrize(
    "category,count",
    [
        (MainCategory.APPLICATION, 12),
        (MainCategory.IOSTREAM, 8),
        (MainCategory.KERNEL, 20),
        (MainCategory.MEMORY, 22),
        (MainCategory.MIDPLANE, 6),
        (MainCategory.NETWORK, 11),
        (MainCategory.NODECARD, 10),
        (MainCategory.OTHER, 12),
    ],
)
def test_table3_counts(category, count):
    assert len(by_category(category)) == count


@pytest.mark.parametrize(
    "name",
    [
        # Every example the paper's Table 3 lists must exist.
        "loadProgramFailure", "loginFailure", "socketReadFailure",
        "streamReadFailure", "alignmentFailure", "dataAddressFailure",
        "instructionAddressFailure", "cachePrefetchFailure", "dataReadFailure",
        "dataStoreFailure", "parityFailure", "linkcardFailure",
        "ciodSignalFailure", "midplaneServiceWarning", "ethernetFailure",
        "rtsFailure", "torusFailure", "torusConnectionErrorInfo",
        "nodecardDiscoveryError", "nodecardAssemblyWarning",
        "BGLMasterRestartInfo", "CMCSControlInfo", "linkcardServiceWarning",
    ],
)
def test_paper_examples_present(name):
    assert by_name(name).name == name


def test_fatal_nonfatal_partition():
    assert len(FATAL_SUBCATS) + len(NONFATAL_SUBCATS) == 101
    assert all(sc.is_fatal for sc in FATAL_SUBCATS)
    assert all(not sc.is_fatal for sc in NONFATAL_SUBCATS)


def test_every_category_has_a_fatal_subcategory():
    fatal = fatal_names_by_category()
    for cat in MainCategory:
        assert fatal[cat], f"{cat} has no fatal subcategory"


def test_naming_convention_matches_severity():
    for sc in CATALOG:
        if sc.name.endswith("Info"):
            assert sc.severity is Severity.INFO, sc.name
        if sc.name.endswith("Warning"):
            assert sc.severity is Severity.WARNING, sc.name
        if sc.name.endswith("Failure"):
            assert sc.severity.is_fatal, sc.name


def test_by_name_unknown():
    with pytest.raises(KeyError):
        by_name("doesNotExist")


def test_templates_contain_pattern():
    for sc in CATALOG:
        for t in sc.templates:
            assert sc.pattern.lower() in t.lower()


def test_subcategory_rejects_bad_template():
    with pytest.raises(ValueError, match="does not contain"):
        Subcategory(
            name="x",
            category=MainCategory.OTHER,
            severity=Severity.INFO,
            facility=CATALOG[0].facility,
            location_kind=CATALOG[0].location_kind,
            pattern="needle",
            templates=("haystack only",),
        )


def test_validate_catalog_detects_duplicates():
    with pytest.raises(ValueError, match="duplicate"):
        validate_catalog(list(CATALOG) + [CATALOG[0]])


def test_validate_catalog_detects_wrong_counts():
    with pytest.raises(ValueError):
        validate_catalog(CATALOG[:100])
