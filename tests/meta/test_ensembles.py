"""Tests for repro.meta.ensembles (dispatch-policy ablations)."""

import pytest

from repro.evaluation.matching import match_warnings
from repro.meta.ensembles import POLICIES, PolicyEnsemble


@pytest.fixture(scope="module")
def split(anl_events):
    n = len(anl_events)
    cut = int(n * 0.7)
    return anl_events.select(slice(0, cut)), anl_events.select(slice(cut, n))


@pytest.fixture(scope="module")
def fitted(split):
    train, _ = split
    out = {}
    for policy in POLICIES:
        out[policy] = PolicyEnsemble(policy).fit(train)
    return out


def test_unknown_policy():
    with pytest.raises(ValueError, match="policy"):
        PolicyEnsemble("majority")


def test_single_base_policies_match_bases(fitted, split):
    _, test = split
    rule_only = fitted["rule_only"].predict(test)
    base_rule = fitted["rule_only"].rulebased.predict(test)
    assert [w.issued_at for w in rule_only] == [w.issued_at for w in base_rule]

    stat_only = fitted["statistical_only"].predict(test)
    base_stat = fitted["statistical_only"].statistical.predict(test)
    assert len(stat_only) == len(base_stat)


def test_union_has_all_warnings(fitted, split):
    _, test = split
    union = fitted["union"].predict(test)
    n_rule = len(fitted["union"].rulebased.predict(test))
    n_stat = len(fitted["union"].statistical.predict(test))
    assert len(union) == n_rule + n_stat


def test_union_recall_at_least_single_base(fitted, split):
    _, test = split
    r = {
        p: match_warnings(fitted[p].predict(test), test).metrics.recall
        for p in ("union", "rule_only", "statistical_only")
    }
    assert r["union"] >= max(r["rule_only"], r["statistical_only"])


def test_intersection_smaller_than_union(fitted, split):
    _, test = split
    inter = fitted["intersection"].predict(test)
    union = fitted["union"].predict(test)
    assert len(inter) <= len(union)


def test_confidence_max_bounded_by_union(fitted, split):
    # Note: intersection keeps BOTH members of an overlapping pair while
    # confidence_max keeps one, so no fixed order holds between those two;
    # only the union bound is an invariant.
    _, test = split
    n_inter = len(fitted["intersection"].predict(test))
    n_conf = len(fitted["confidence_max"].predict(test))
    n_union = len(fitted["union"].predict(test))
    assert n_conf <= n_union
    assert n_inter <= n_union


def test_warnings_sorted(fitted, split):
    _, test = split
    for policy in POLICIES:
        ws = fitted[policy].predict(test)
        assert all(
            ws[i].issued_at <= ws[i + 1].issued_at for i in range(len(ws) - 1)
        )


def test_name_reflects_policy():
    assert PolicyEnsemble("union").name == "ensemble[union]"
