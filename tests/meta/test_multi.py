"""Tests for repro.meta.multi (N-base meta-learning)."""

import pytest

from repro.evaluation.matching import match_warnings
from repro.meta.multi import MultiMeta
from repro.predictors.base import FailureWarning, Predictor
from repro.predictors.extensions import PeriodicityPredictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.ras.store import EventStore
from repro.util.timeutil import HOUR, MINUTE


class _Fixed(Predictor):
    """Emits a canned warning list (testing harness)."""

    def __init__(self, name, warnings):
        super().__init__()
        self.name = name
        self._warnings = warnings

    def fit(self, events):
        self._fitted = True
        return self

    def predict(self, events):
        self._check_fitted()
        return list(self._warnings)


def w(issued, conf, source, end=None):
    return FailureWarning(
        issued_at=issued, horizon_start=issued + 1,
        horizon_end=end if end is not None else issued + 600,
        confidence=conf, source=source, detail=source,
    )


def test_requires_bases():
    with pytest.raises(ValueError):
        MultiMeta([])


def test_requires_unique_names():
    a = _Fixed("x", [])
    b = _Fixed("x", [])
    with pytest.raises(ValueError, match="unique"):
        MultiMeta([a, b])


def test_fit_fits_all_bases():
    bases = [_Fixed("a", []), _Fixed("b", [])]
    mm = MultiMeta(bases).fit(EventStore.empty())
    assert all(b.is_fitted for b in bases)
    assert mm.predict(EventStore.empty()) == []


def test_dominated_warning_suppressed():
    strong = w(100, 0.9, "a")
    weak = w(150, 0.5, "b")  # overlaps strong's horizon, lower confidence
    mm = MultiMeta([_Fixed("a", [strong]), _Fixed("b", [weak])]).fit(
        EventStore.empty()
    )
    kept = mm.predict(EventStore.empty())
    assert kept == [strong]
    assert mm.suppressed == {"a": 0, "b": 1}
    assert mm.contributions == {"a": 1, "b": 0}


def test_non_overlapping_both_kept():
    a = w(100, 0.9, "a", end=200)
    b = w(500, 0.5, "b")
    mm = MultiMeta([_Fixed("a", [a]), _Fixed("b", [b])]).fit(
        EventStore.empty()
    )
    assert len(mm.predict(EventStore.empty())) == 2


def test_equal_confidence_both_kept():
    a = w(100, 0.7, "a")
    b = w(150, 0.7, "b")
    mm = MultiMeta([_Fixed("a", [a]), _Fixed("b", [b])]).fit(
        EventStore.empty()
    )
    assert len(mm.predict(EventStore.empty())) == 2


def test_same_base_never_suppresses_itself():
    a1 = w(100, 0.9, "a")
    a2 = w(150, 0.5, "a")
    mm = MultiMeta([_Fixed("a", [a1, a2])]).fit(EventStore.empty())
    assert len(mm.predict(EventStore.empty())) == 2


def test_three_bases_on_real_log(anl_events):
    """Future-work configuration: statistical + rule + periodicity."""
    cut = int(len(anl_events) * 0.5)
    train = anl_events.select(slice(0, cut))
    test = anl_events.select(slice(cut, len(anl_events)))

    mm = MultiMeta([
        StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        RuleBasedPredictor(rule_window=15 * MINUTE,
                           prediction_window=30 * MINUTE),
        PeriodicityPredictor(),
    ]).fit(train)
    kept = mm.predict(test)
    m = match_warnings(kept, test).metrics

    # Sanity bounds (the tiny session fixture leaves few test failures;
    # magnitude is asserted by the benches at scale).
    assert sum(mm.contributions.values()) == len(kept)
    assert m.n_warnings > 0
    assert 0.0 <= m.precision <= 1.0

    # Arbitration must not lose recall vs the best single base.
    singles = []
    for base in (
        StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        RuleBasedPredictor(rule_window=15 * MINUTE,
                           prediction_window=30 * MINUTE),
    ):
        base.fit(train)
        singles.append(match_warnings(base.predict(test), test).metrics.recall)
    assert m.recall >= max(singles) - 0.05


def test_not_fitted():
    mm = MultiMeta([_Fixed("a", [])])
    with pytest.raises(Exception):
        mm.predict(EventStore.empty())
