"""Tests for repro.meta.stacked (the coverage-based meta-learner)."""

import pytest

from repro.evaluation.matching import match_warnings
from repro.meta.stacked import MetaLearner
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.ras.fields import Facility, Severity
from repro.ras.store import EventStore
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import HOUR, MINUTE
from tests.conftest import make_event


def _labeled(events):
    return TaxonomyClassifier().classify_store(EventStore.from_events(events))


def _chain(t0, with_head=True):
    events = [
        make_event(time=t0, severity=Severity.WARNING,
                   entry="watchdog timer approaching expiration"),
        make_event(time=t0 + 60, severity=Severity.ERROR,
                   entry="kernel assertion failed: internal consistency check"),
    ]
    if with_head:
        events.append(
            make_event(time=t0 + 180, severity=Severity.FAILURE,
                       entry="kernel panic: unrecoverable condition detected")
        )
    return events


def _net_fatal(t):
    return make_event(time=t, severity=Severity.FAILURE, facility=Facility.KERNEL,
                      entry="uncorrectable torus error: retransmission limit exceeded")


@pytest.fixture
def mixed_train():
    """Chains plus network storms: both base signals present."""
    events = []
    for k in range(25):
        events.extend(_chain(10_000 + k * 7200))
    for k in range(25):
        t = 2_000_000 + k * 7200
        events.extend([_net_fatal(t), _net_fatal(t + 10 * MINUTE),
                       _net_fatal(t + 20 * MINUTE)])
    return _labeled(events)


@pytest.fixture
def meta(mixed_train):
    return MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(mixed_train)


def test_fit_fits_both_bases(meta):
    assert meta.statistical.is_fitted
    assert meta.rulebased.is_fitted
    assert len(meta.rulebased.ruleset) >= 1
    assert meta.statistical.trigger_categories


def test_case1_rule_dispatch(meta):
    """Non-fatal-only context: the rule method speaks."""
    test = _labeled(_chain(9_000_000))
    warnings = meta.predict(test)
    assert len(warnings) == 1
    assert warnings[0].detail.startswith("rule:")
    assert meta.dispatch_counts == {"rule": 1, "statistical": 0}


def test_case2_statistical_dispatch(meta):
    """Fatal-only context with trigger history: the statistical method."""
    test = _labeled([
        _net_fatal(9_000_000),
        _net_fatal(9_000_000 + 10 * MINUTE),
    ])
    warnings = meta.predict(test)
    assert len(warnings) == 1
    assert warnings[0].detail == "statistical: network"
    # Issued at the second fatal (the first has no trigger history).
    assert warnings[0].issued_at == 9_000_000 + 10 * MINUTE


def test_isolated_trigger_is_silent(meta):
    """A single isolated network fatal is a pattern *start*, not evidence."""
    test = _labeled([_net_fatal(9_000_000)])
    assert meta.predict(test) == []


def test_statistical_band_fixed(meta):
    """Meta statistical warnings keep the 5min-1h band regardless of W."""
    test = _labeled([
        _net_fatal(9_000_000),
        _net_fatal(9_000_000 + 10 * MINUTE),
    ])
    [w] = meta.predict(test)
    assert w.horizon_start == w.issued_at + 5 * MINUTE
    assert w.horizon_end == w.issued_at + HOUR


def test_stat_dedup_within_storm(meta):
    """One active statistical warning per category inside a storm."""
    base = 9_000_000
    test = _labeled([_net_fatal(base + k * 10 * MINUTE) for k in range(5)])
    warnings = meta.predict(test)
    assert len(warnings) == 1


def test_meta_covers_union_of_signals(meta):
    """Chains AND storms in the test stream: meta covers both kinds."""
    events = (
        _chain(9_000_000)
        + [_net_fatal(9_500_000 + k * 10 * MINUTE) for k in range(4)]
    )
    test = _labeled(events)
    warnings = meta.predict(test)
    match = match_warnings(warnings, test)
    # 5 fatals total: 1 chain head + 4 storm members; chain head and storm
    # members 2..4 are coverable.
    assert match.metrics.covered_fatals >= 3


def test_meta_beats_both_bases_on_recall(anl_events):
    """The paper's headline claim, on the small ANL log."""
    n = len(anl_events)
    cut = int(n * 0.7)
    train = anl_events.select(slice(0, cut))
    test = anl_events.select(slice(cut, n))
    W, G = 30 * MINUTE, 15 * MINUTE

    stat = StatisticalPredictor(window=HOUR, lead=5 * MINUTE).fit(train)
    rule = RuleBasedPredictor(rule_window=G, prediction_window=W).fit(train)
    meta = MetaLearner(prediction_window=W, rule_window=G).fit(train)

    r_stat = match_warnings(stat.predict(test), test).metrics.recall
    r_rule = match_warnings(rule.predict(test), test).metrics.recall
    r_meta = match_warnings(meta.predict(test), test).metrics.recall
    assert r_meta >= max(r_stat, r_rule)


def test_dispatch_counts_reset_per_predict(meta):
    test = _labeled(_chain(9_000_000))
    meta.predict(test)
    first = dict(meta.dispatch_counts)
    meta.predict(test)
    assert meta.dispatch_counts == first


def test_empty_test_store(meta):
    assert meta.predict(
        TaxonomyClassifier().classify_store(EventStore.empty())
    ) == []


def test_not_fitted():
    with pytest.raises(Exception):
        MetaLearner().predict(EventStore.empty())


def test_parameter_validation():
    with pytest.raises(ValueError):
        MetaLearner(prediction_window=0)
