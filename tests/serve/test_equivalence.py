"""Equivalence suite: batch feed == per-event feed == offline predict.

The serving fast paths are only admissible because they are *bit-identical*
to the reference paths; these tests enforce that element-for-element, on
both synthetic-log profiles (ANL and SDSC event mixes stress different
dispatch cases).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.meta.stacked import MetaLearner
from repro.online import OnlineDetector, OnlineSession
from repro.util.timeutil import MINUTE


def _fit_split(events):
    cut = int(len(events) * 0.7)
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(events.select(slice(0, cut)))
    return meta, events.select(slice(cut, len(events)))


@pytest.fixture(scope="module", params=["anl", "sdsc"])
def fitted(request, anl_events, sdsc_events):
    events = anl_events if request.param == "anl" else sdsc_events
    return _fit_split(events)


def _assert_same_warnings(actual, expected):
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert (a.issued_at, a.horizon_start, a.horizon_end, a.source, a.detail) \
            == (b.issued_at, b.horizon_start, b.horizon_end, b.source, b.detail)
        assert a.confidence == b.confidence


def test_feed_store_equals_per_event_feed(fitted):
    meta, test = fitted
    per_event = OnlineDetector(meta)
    reference = []
    for ev in test:
        reference.extend(per_event.feed(ev))

    batched = OnlineDetector(meta)
    _assert_same_warnings(batched.feed_store(test), reference)
    assert batched.events_seen == per_event.events_seen == len(test)


def test_feed_store_equals_offline_predict(fitted):
    meta, test = fitted
    offline = meta.predict(test)
    _assert_same_warnings(OnlineDetector(meta).feed_store(test), offline)


def test_feed_batch_chunking_is_invariant(fitted):
    """Chunk boundaries must not change the output (state carries over)."""
    meta, test = fitted
    whole = OnlineDetector(meta).feed_store(test)

    chunked = OnlineDetector(meta)
    label_ids = chunked.label_ids_for(test)
    fatal = test.fatal_mask()
    out = []
    for lo in range(0, len(test), 17):
        hi = min(lo + 17, len(test))
        out.extend(
            chunked.feed_batch(test.times[lo:hi], label_ids[lo:hi], fatal[lo:hi])
        )
    _assert_same_warnings(out, whole)


def test_feed_batch_rejects_time_disorder(fitted):
    meta, test = fitted
    detector = OnlineDetector(meta)
    times = np.array([1000, 999], dtype=np.int64)
    ids = np.zeros(2, dtype=np.int64)
    fatal = np.zeros(2, dtype=bool)
    with pytest.raises(ValueError, match="time order"):
        detector.feed_batch(times, ids, fatal)


def test_feed_batch_rejects_rewind_across_batches(fitted):
    meta, test = fitted
    detector = OnlineDetector(meta)
    ids = np.zeros(1, dtype=np.int64)
    fatal = np.zeros(1, dtype=bool)
    detector.feed_batch(np.array([5000], dtype=np.int64), ids, fatal)
    with pytest.raises(ValueError, match="time order"):
        detector.feed_batch(np.array([4000], dtype=np.int64), ids, fatal)


def test_feed_store_empty_store_is_noop(fitted):
    meta, test = fitted
    detector = OnlineDetector(meta)
    assert detector.feed_store(test.select(np.array([], dtype=int))) == []
    assert detector.events_seen == 0


def test_session_process_store_equals_per_event_process(fitted):
    """SessionStats (every counter, including lead times) must match."""
    meta, test = fitted
    per_event = OnlineSession(meta)
    reference = []
    for ev in test:
        reference.extend(per_event.process(ev))

    batched = OnlineSession(meta)
    warnings = batched.process_store(test)
    _assert_same_warnings(warnings, reference)
    assert batched.stats == per_event.stats
    assert batched.pending_count == per_event.pending_count
    assert batched.finish() == per_event.finish()
