"""Chunked (bounded-memory) pool replay equals whole-store replay."""

import pytest

from repro.core.config import PredictorConfig
from repro.core.pipeline import ThreePhasePredictor
from repro.serve.pool import DetectorPool


@pytest.fixture(scope="module")
def fitted_meta(anl_events):
    predictor = ThreePhasePredictor(PredictorConfig())
    predictor.fit(anl_events)
    return predictor.meta


def _warning_keys(report):
    return [
        (w.issued_at, w.horizon_start, w.horizon_end, w.detail)
        for shard in report.shards
        for w in shard.warnings
    ]


@pytest.mark.parametrize("chunk_events", [37, 512])
def test_chunked_replay_matches_whole_store(fitted_meta, anl_events, chunk_events):
    whole = DetectorPool(fitted_meta, shards=4).replay(anl_events)
    chunked = DetectorPool(fitted_meta, shards=4).replay(
        anl_events, chunk_events=chunk_events
    )
    assert chunked.events == whole.events == len(anl_events)
    assert [s.shard for s in chunked.shards] == [s.shard for s in whole.shards]
    for a, b in zip(chunked.shards, whole.shards):
        assert a.events == b.events
        assert a.stats.failures == b.stats.failures
        assert a.stats.hits == b.stats.hits
    assert _warning_keys(chunked) == _warning_keys(whole)
    assert chunked.combined.warnings == whole.combined.warnings
    assert chunked.combined.precision_so_far == whole.combined.precision_so_far


def test_chunked_replay_on_columnar_store(fitted_meta, columnar_raw):
    """Replay straight off the memory-mapped store, chunk by chunk."""
    events = ThreePhasePredictor().preprocess(columnar_raw).events
    whole = DetectorPool(fitted_meta, shards=2).replay(events)
    chunked = DetectorPool(fitted_meta, shards=2).replay(
        events, chunk_events=100
    )
    assert _warning_keys(chunked) == _warning_keys(whole)
    assert chunked.combined.failures == whole.combined.failures


def test_chunked_replay_without_finalize(fitted_meta, anl_events):
    a = DetectorPool(fitted_meta, shards=2).replay(anl_events, finalize=False)
    b = DetectorPool(fitted_meta, shards=2).replay(
        anl_events, finalize=False, chunk_events=64
    )
    assert _warning_keys(a) == _warning_keys(b)
