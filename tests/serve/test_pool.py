"""Tests for repro.serve (sharding and the detector pool)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.meta.stacked import MetaLearner
from repro.online import OnlineSession
from repro.serve import DetectorPool, midplane_of, shard_ids, shard_of_key
from repro.util.timeutil import MINUTE


@pytest.fixture(scope="module")
def fitted(anl_events):
    cut = int(len(anl_events) * 0.7)
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_events.select(slice(0, cut)))
    return meta, anl_events.select(slice(cut, len(anl_events)))


# ------------------------------------------------------------- sharding


def test_midplane_of_extracts_prefix():
    assert midplane_of("R12-M0-N04-C32") == "R12-M0"
    assert midplane_of("R12-M1") == "R12-M1"
    # Coarser or free-form locations shard by their full string.
    assert midplane_of("R12") == "R12"
    assert midplane_of("service-card") == "service-card"


def test_shard_ids_midplane_matches_per_event_routing(fitted):
    meta, test = fitted
    pool = DetectorPool(meta, shards=4, key="midplane")
    assignment = shard_ids(test, "midplane", 4)
    for i, ev in enumerate(test):
        assert pool.shard_of(ev) == assignment[i]


def test_shard_ids_job_matches_per_event_routing(fitted):
    meta, test = fitted
    pool = DetectorPool(meta, shards=3, key="job")
    assignment = shard_ids(test, "job", 3)
    for i, ev in enumerate(test):
        assert pool.shard_of(ev) == assignment[i]


def test_shard_ids_are_in_range_and_deterministic(fitted):
    _, test = fitted
    for key in ("midplane", "job"):
        a = shard_ids(test, key, 5)
        assert a.min() >= 0 and a.max() < 5
        assert np.array_equal(a, shard_ids(test, key, 5))


def test_shard_of_key_is_stable():
    # crc32 is unsalted: the mapping is a constant across processes/runs.
    assert shard_of_key("R00-M0", 4) == shard_of_key("R00-M0", 4)
    assert 0 <= shard_of_key("anything", 7) < 7


def test_unknown_key_rejected(fitted):
    meta, test = fitted
    with pytest.raises(ValueError, match="shard key"):
        DetectorPool(meta, shards=2, key="rack")
    with pytest.raises(ValueError, match="shard key"):
        shard_ids(test, "rack", 2)


# ----------------------------------------------------------------- pool


def test_single_shard_pool_equals_plain_session(fitted):
    """shards=1 degenerates to one OnlineSession — identical everything."""
    meta, test = fitted
    session = OnlineSession(meta)
    warnings = session.process_store(test)
    stats = session.finish()

    report = DetectorPool(meta, shards=1, key="midplane").replay(test)
    assert len(report.shards) == 1
    assert report.shards[0].warnings == warnings
    assert report.combined == stats
    assert report.events == len(test)


def test_partition_covers_store_and_preserves_order(fitted):
    meta, test = fitted
    pool = DetectorPool(meta, shards=4, key="midplane")
    parts = pool.partition(test)
    assert sum(len(p) for _, p in parts) == len(test)
    shards = [s for s, _ in parts]
    assert shards == sorted(shards)
    for _, part in parts:
        assert np.all(np.diff(part.times) >= 0)


def test_replay_serial_equals_parallel(fitted):
    """Worker-shipped replay is bit-for-bit the serial replay."""
    meta, test = fitted
    pool = DetectorPool(meta, shards=4, key="midplane")
    serial = pool.replay(test, jobs=1)
    parallel = pool.replay(test, jobs=2)
    assert [s.shard for s in serial.shards] == [s.shard for s in parallel.shards]
    assert [s.stats for s in serial.shards] == [s.stats for s in parallel.shards]
    assert [s.warnings for s in serial.shards] == [
        s.warnings for s in parallel.shards
    ]
    assert serial.combined == parallel.combined


def test_replay_shard_stats_sum_to_combined(fitted):
    meta, test = fitted
    report = DetectorPool(meta, shards=4, key="job").replay(test)
    assert report.combined.events == sum(s.stats.events for s in report.shards)
    assert report.combined.failures == sum(
        s.stats.failures for s in report.shards
    )
    assert report.warnings_total == report.combined.warnings
    assert report.events_per_sec > 0


def test_daemon_mode_matches_replay(fitted):
    """Event-at-a-time routing reaches the same per-shard streams."""
    meta, test = fitted
    pool = DetectorPool(meta, shards=4, key="midplane")
    for ev in test:
        pool.process(ev)
    daemon_stats = pool.finish()
    replay_stats = DetectorPool(meta, shards=4, key="midplane").replay(test).combined
    assert daemon_stats == replay_stats


def test_replay_does_not_touch_daemon_sessions(fitted):
    meta, test = fitted
    pool = DetectorPool(meta, shards=2, key="midplane")
    pool.replay(test)
    assert pool.combined_stats().events == 0


def test_pool_requires_fitted_meta():
    with pytest.raises(ValueError, match="fitted"):
        DetectorPool(MetaLearner(), shards=2)


def test_pool_emits_serve_metrics(fitted):
    from repro.obs import MetricsRegistry, use

    meta, test = fitted
    registry = MetricsRegistry()
    with use(registry):
        DetectorPool(meta, shards=4, key="midplane").replay(test)
    assert "serve.events_per_sec" in registry.gauges
    assert registry.histograms.get("serve.feed_seconds")
    assert registry.histograms.get("serve.pending_warnings")
    assert any(k.startswith("serve.shard_events") for k in registry.counters)
    assert any(s.name == "serve.replay" for s in registry.spans)
