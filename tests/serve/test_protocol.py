"""Tests for the daemon wire protocol codec (repro.serve.protocol)."""

from __future__ import annotations

import json

import pytest

from repro.ras.events import NO_JOB, RasEvent
from repro.ras.fields import Facility, Severity
from repro.serve.protocol import (
    MAX_BATCH_EVENTS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    busy_response,
    decode_frame,
    decode_request,
    encode_frame,
    error_response,
    event_from_dict,
    event_to_dict,
    http_request_path,
    http_response,
    is_http_request,
    ok_response,
    warning_to_dict,
)
from tests.conftest import make_event

# ------------------------------------------------------------- event codec


def test_event_round_trips_through_dict():
    ev = make_event(
        time=1234,
        severity=Severity.FATAL,
        facility=Facility.KERNEL,
        entry="machine check interrupt",
    )
    assert event_from_dict(event_to_dict(ev)) == ev


def test_event_round_trips_optional_fields():
    ev = RasEvent(
        time=5,
        location="R00-M0-S",
        facility=Facility.MONITOR,
        severity=Severity.WARNING,
        entry_data="fan speed below nominal rpm",
        job_id=NO_JOB,
        event_type="ENV",
        subcategory="midplane_switch",
    )
    doc = event_to_dict(ev)
    assert doc["event_type"] == "ENV"
    assert doc["subcategory"] == "midplane_switch"
    assert "job_id" not in doc  # NO_JOB is the wire default
    assert event_from_dict(doc) == ev


def test_event_dict_is_json_safe():
    doc = event_to_dict(make_event())
    assert event_from_dict(json.loads(json.dumps(doc))) == event_from_dict(doc)


def test_facility_and_severity_names_are_case_insensitive():
    doc = event_to_dict(make_event())
    doc["facility"] = doc["facility"].lower()
    doc["severity"] = doc["severity"].capitalize()
    assert event_from_dict(doc).facility == Facility.KERNEL


@pytest.mark.parametrize(
    "mutation",
    [
        {"time": "yesterday"},
        {"time": True},
        {"time": -1},
        {"location": ""},
        {"location": 7},
        {"facility": "COFFEE"},
        {"severity": "MEH"},
        {"entry_data": None},
        {"job_id": "none"},
        {"subcategory": 3},
        {"event_type": 9},
    ],
)
def test_malformed_event_fields_raise_protocol_error(mutation):
    doc = event_to_dict(make_event())
    doc.update(mutation)
    with pytest.raises(ProtocolError):
        event_from_dict(doc)


def test_non_object_event_payload_rejected():
    with pytest.raises(ProtocolError):
        event_from_dict([1, 2, 3])


# ------------------------------------------------------------- frame codec


def test_frame_round_trip():
    doc = {"op": "ping", "n": 3}
    assert decode_frame(encode_frame(doc)) == doc


def test_encode_frame_is_one_line():
    line = encode_frame({"op": "ping", "text": "a b c"})
    assert line.endswith(b"\n") and line.count(b"\n") == 1


@pytest.mark.parametrize(
    "raw",
    [b"", b"   \n", b"not json\n", b"[1,2]\n", b'"just a string"\n'],
)
def test_malformed_frames_rejected(raw):
    with pytest.raises(ProtocolError):
        decode_frame(raw)


def test_oversized_frame_rejected():
    blob = b'{"op":"ping","pad":"' + b"x" * MAX_LINE_BYTES + b'"}\n'
    with pytest.raises(ProtocolError, match="exceeds"):
        decode_frame(blob)


# ------------------------------------------------------------- requests


def test_decode_event_request():
    req = decode_request(
        encode_frame(
            {"op": "event", "stream": "anl.prod-1", "event": event_to_dict(make_event())}
        )
    )
    assert req.op == "event"
    assert req.stream == "anl.prod-1"
    assert len(req.events) == 1


def test_decode_batch_request_preserves_order():
    events = [make_event(time=t) for t in (10, 20, 30)]
    req = decode_request(
        encode_frame(
            {"op": "batch", "stream": "s", "events": [event_to_dict(e) for e in events]}
        )
    )
    assert [e.time for e in req.events] == [10, 20, 30]


def test_ops_without_payload_decode():
    for op in ("ping", "health", "metrics", "drain"):
        assert decode_request(encode_frame({"op": op})).op == op


@pytest.mark.parametrize(
    "doc",
    [
        {"stream": "s"},  # missing op
        {"op": 5},
        {"op": "mystery"},
        {"op": "event", "stream": "s"},  # missing payload
        {"op": "event", "stream": "bad stream id!", "event": {}},
        {"op": "batch", "stream": "s"},  # missing events
        {"op": "batch", "stream": "s", "events": "nope"},
        {"op": "event", "event": {}},  # missing stream
        {"op": "stats", "stream": "x" * 65},  # over-long stream id
    ],
)
def test_malformed_requests_rejected(doc):
    with pytest.raises(ProtocolError):
        decode_request(encode_frame(doc))


def test_oversized_batch_rejected():
    doc = event_to_dict(make_event())
    frame = {"op": "batch", "stream": "s", "events": [doc] * (MAX_BATCH_EVENTS + 1)}
    with pytest.raises(ProtocolError, match="batch exceeds"):
        decode_request(encode_frame(frame))


# ------------------------------------------------------------- responses


def test_response_shells():
    assert ok_response(accepted=3) == {"ok": True, "accepted": 3}
    assert error_response("boom")["error"] == "boom"
    busy = busy_response(5, 64)
    assert busy["busy"] and not busy["ok"] and busy["accepted"] == 5


def test_warning_to_dict_fields():
    from repro.predictors.base import FailureWarning

    w = FailureWarning(
        issued_at=100,
        horizon_start=400,
        horizon_end=700,
        confidence=0.5,
        source="rule",
        detail="x",
    )
    doc = warning_to_dict(w)
    assert doc == {
        "issued_at": 100,
        "horizon_start": 400,
        "horizon_end": 700,
        "confidence": 0.5,
        "source": "rule",
        "detail": "x",
    }
    json.dumps(doc)  # must be JSON-safe


# ------------------------------------------------------------- HTTP shim


def test_http_request_detection():
    assert is_http_request(b"GET /metrics HTTP/1.1\r\n")
    assert is_http_request(b"HEAD /health HTTP/1.0\r\n")
    assert not is_http_request(b'{"op":"ping"}\n')


def test_http_request_path_strips_query():
    assert http_request_path(b"GET /metrics?pretty=1 HTTP/1.1\r\n") == "/metrics"


def test_http_request_path_rejects_garbage():
    with pytest.raises(ProtocolError):
        http_request_path(b"GET\r\n")


def test_http_response_shape():
    raw = http_response(200, '{"ok":true}\n')
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.0 200 OK")
    assert b"Content-Length: 12" in head
    assert body == b'{"ok":true}\n'
    assert http_response(503, "{}").startswith(b"HTTP/1.0 503")


def test_protocol_version_is_wire_visible():
    assert isinstance(PROTOCOL_VERSION, int) and PROTOCOL_VERSION >= 1
