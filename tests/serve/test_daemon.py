"""Tests for the live ingestion daemon (streams, backpressure, drain).

Each test drives a real :class:`IngestDaemon` over a loopback TCP socket
inside ``asyncio.run`` — no event-loop plugin needed.  The load-bearing
property is the drain oracle: a daemon fed over the wire and drained must
produce exactly the resolved statistics of a batch replay of the same
per-stream traffic, because the worker's chunked columnar feed is
chunk-size invariant.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.meta.stacked import MetaLearner
from repro.online.resolution import SessionStats
from repro.serve import DetectorPool
from repro.serve.client import emit_events, partition_round_robin
from repro.serve.daemon import (
    DaemonConfig,
    IngestDaemon,
    state_from_dict,
    state_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.serve.protocol import decode_frame, encode_frame, event_to_dict
from repro.serve.streams import StreamChannel
from repro.util.timeutil import MINUTE

CONFIG = DaemonConfig(port=0, queue_bound=512, shards=2, chunk_events=64)


@pytest.fixture(scope="module")
def fitted(anl_events):
    cut = int(len(anl_events) * 0.7)
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_events.select(slice(0, cut)))
    return meta, anl_events.select(slice(cut, len(anl_events)))


def oracle_stats(meta, events, *, shards=CONFIG.shards, key=CONFIG.key):
    """Reference accounting: per-event daemon-mode replay, finalized."""
    pool = DetectorPool(meta, shards=shards, key=key)
    for ev in events:
        pool.process(ev)
    return pool.finish()


async def send_frames(port, frames):
    """One connection; send each frame, collect each response."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    responses = []
    try:
        for frame in frames:
            writer.write(encode_frame(frame))
            await writer.drain()
            responses.append(decode_frame(await reader.readline()))
    finally:
        writer.close()
        await writer.wait_closed()
    return responses


async def send_raw(port, payload: bytes, lines: int = 1):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        return [await reader.readline() for _ in range(lines)]
    finally:
        writer.close()
        await writer.wait_closed()


def batch_frames(stream, events, batch=100):
    return [
        {
            "op": "batch",
            "stream": stream,
            "events": [event_to_dict(e) for e in events[i : i + batch]],
        }
        for i in range(0, len(events), batch)
    ]


# ------------------------------------------------------------- drain oracle


def test_drain_matches_batch_oracle_per_stream(fitted):
    """Wire-fed, chunk-batched, drained == per-event replay, per stream."""
    meta, test = fitted
    events = list(test)
    parts = partition_round_robin(events, ["alpha", "beta"])

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            for stream, evs in parts.items():
                responses = await send_frames(daemon.port, batch_frames(stream, evs))
                assert all(r["ok"] for r in responses)
            return await daemon.drain()

    report = asyncio.run(run())
    assert {r.stream_id for r in report.streams} == {"alpha", "beta"}
    for sr in report.streams:
        expected = oracle_stats(meta, parts[sr.stream_id])
        assert sr.stats == expected
        assert sr.processed == len(parts[sr.stream_id])
        assert sr.dropped_busy == 0 and sr.rejected_order == 0
    combined = SessionStats()
    for stream_events in parts.values():
        combined.merge(oracle_stats(meta, stream_events))
    # Merge order differs (stream ids vs dict order) only in lead_seconds.
    assert report.combined.warnings == combined.warnings
    assert report.combined.hits == combined.hits
    assert report.combined.false_alarms == combined.false_alarms
    assert sorted(report.combined.lead_seconds) == sorted(combined.lead_seconds)


def test_single_event_frames_equal_batch_frames(fitted):
    """Wire batching is invisible: per-event frames give the same drain."""
    meta, test = fitted
    events = list(test)[:120]

    async def run(frames):
        async with IngestDaemon(meta, CONFIG) as daemon:
            responses = await send_frames(daemon.port, frames)
            assert all(r["ok"] for r in responses)
            return await daemon.drain()

    one_by_one = [
        {"op": "event", "stream": "s", "event": event_to_dict(e)} for e in events
    ]
    r1 = asyncio.run(run(one_by_one))
    r2 = asyncio.run(run(batch_frames("s", events, batch=37)))
    assert r1.streams[0].stats == r2.streams[0].stats


def test_emit_client_round_trips_against_daemon(fitted):
    """The reference producer delivers everything and tallies correctly."""
    meta, test = fitted
    events = list(test)

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            report = await emit_events(
                events, port=daemon.port, streams=("s0", "s1", "s2"), batch=64
            )
            drain = await daemon.drain()
            return report, drain

    emit_report, drain_report = asyncio.run(run())
    assert emit_report.sent == len(events)
    assert not emit_report.errors
    assert {t.stream_id for t in emit_report.tallies} == {"s0", "s1", "s2"}
    assert all(t.final_stats is not None for t in emit_report.tallies)
    assert drain_report.events == len(events)
    parts = partition_round_robin(events, ["s0", "s1", "s2"])
    for sr in drain_report.streams:
        assert sr.stats == oracle_stats(meta, parts[sr.stream_id])


# ------------------------------------------------------------- backpressure


def test_stalled_channel_bounds_queue_and_reports_busy(fitted):
    """With its worker stalled, a channel never grows past queue_bound."""
    meta, test = fitted
    events = list(test)
    bound = 16

    async def run():
        channel = StreamChannel("s", meta, queue_bound=bound)
        # No channel.start(): the consumer is maximally stalled.
        verdicts = [channel.offer(ev) for ev in events[: bound + 10]]
        assert verdicts[:bound] == ["ok"] * bound
        assert verdicts[bound:] == ["busy"] * 10
        assert channel.queue.qsize() == bound
        assert channel.stats.ingested == bound
        assert channel.stats.dropped_busy == 10
        # The consumer coming back drains everything that was accepted.
        channel.start()
        await channel.close()
        assert channel.stats.processed == bound

    asyncio.run(run())


def test_busy_batch_is_partially_accepted_over_the_wire(fitted):
    meta, test = fitted
    events = list(test)
    config = DaemonConfig(port=0, queue_bound=8, shards=2, chunk_events=64)

    async def run():
        async with IngestDaemon(meta, config) as daemon:
            channel = daemon.router.channel("s")
            channel._task.cancel()  # stall the consumer deterministically
            await asyncio.sleep(0)
            (response,) = await send_frames(
                daemon.port, batch_frames("s", events[:20], batch=20)
            )
            assert response["ok"] is False
            assert response["busy"] is True
            assert response["accepted"] == 8
            assert response["queue_depth"] == 8
            assert channel.queue.qsize() == 8
            # Resume a worker so drain() can flush the accepted events.
            channel._task = None
            channel.start()
            return await daemon.drain()

    report = asyncio.run(run())
    assert report.streams[0].processed == 8
    assert report.streams[0].dropped_busy > 0


def test_out_of_order_event_rejected(fitted):
    meta, _ = fitted

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            ev = {"op": "event", "stream": "s"}
            first = {**ev, "event": {**_plain_event(), "time": 1000}}
            stale = {**ev, "event": {**_plain_event(), "time": 999}}
            ok, rejected, again = await send_frames(
                daemon.port, [first, stale, {**ev, "event": {**_plain_event(), "time": 1000}}]
            )
            assert ok["ok"]
            assert not rejected["ok"] and "precedes" in rejected["error"]
            assert again["ok"], "equal timestamps are allowed"
            await daemon.drain()
            assert daemon.router.channels["s"].stats.rejected_order == 1

    asyncio.run(run())


def _plain_event():
    return {
        "time": 1000,
        "location": "R00-M0-N00-C00",
        "facility": "KERNEL",
        "severity": "INFO",
        "entry_data": "timer interrupt rollover serviced",
    }


# ------------------------------------------------------------- protocol edge


def test_malformed_frame_gets_error_but_connection_survives(fitted):
    meta, _ = fitted

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                err = decode_frame(await reader.readline())
                assert err["ok"] is False and "JSON" in err["error"]
                writer.write(encode_frame({"op": "ping"}))
                await writer.drain()
                pong = decode_frame(await reader.readline())
                assert pong["ok"] is True and pong["version"] >= 1
            finally:
                writer.close()
                await writer.wait_closed()
            await daemon.drain()

    asyncio.run(run())


def test_unknown_stream_stats_and_warnings_error(fitted):
    meta, _ = fitted

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            responses = await send_frames(
                daemon.port,
                [{"op": "stats", "stream": "ghost"}, {"op": "warnings", "stream": "ghost"}],
            )
            assert all(not r["ok"] and "unknown stream" in r["error"] for r in responses)
            await daemon.drain()

    asyncio.run(run())


def test_draining_daemon_rejects_ingest(fitted):
    meta, _ = fitted

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            daemon.request_drain()
            (response,) = await send_frames(
                daemon.port, [{"op": "event", "stream": "s", "event": _plain_event()}]
            )
            assert response["ok"] is False
            assert response["draining"] is True
            await daemon.drain()

    asyncio.run(run())


def test_warnings_op_drains_the_ring(fitted):
    meta, test = fitted
    events = list(test)

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            await send_frames(daemon.port, batch_frames("s", events))
            await daemon.router.channels["s"].close()  # flush the worker
            first, second = await send_frames(
                daemon.port,
                [{"op": "warnings", "stream": "s"}, {"op": "warnings", "stream": "s"}],
            )
            await daemon.drain()
            return first, second, daemon.router.channels["s"].stats.warnings

    first, second, total = asyncio.run(run())
    assert first["ok"] and len(first["warnings"]) == min(total, CONFIG.warning_ring)
    assert total > 0, "test stream should raise at least one warning"
    assert second["warnings"] == []  # ring is drained on read
    for doc in first["warnings"]:
        assert {"issued_at", "horizon_start", "horizon_end", "confidence"} <= doc.keys()


# ------------------------------------------------------------- endpoints


def test_health_and_metrics_over_line_and_http(fitted):
    from repro.obs import MetricsRegistry, use

    meta, test = fitted
    events = list(test)[:100]

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            await send_frames(daemon.port, batch_frames("s", events))
            await daemon.router.channels["s"].close()
            (health,) = await send_frames(daemon.port, [{"op": "health"}])
            (metrics,) = await send_frames(daemon.port, [{"op": "metrics"}])
            http_health = await send_raw(
                daemon.port, b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n", lines=8
            )
            http_404 = await send_raw(
                daemon.port, b"GET /nope HTTP/1.1\r\n\r\n", lines=1
            )
            await daemon.drain()
            return health, metrics, http_health, http_404

    with use(MetricsRegistry()):
        health, metrics, http_health, http_404 = asyncio.run(run())
    assert health["status"] == "ok"
    assert health["streams"] == 1
    assert health["processed"] == len(events)
    doc = metrics["metrics"]
    assert doc["gauges"]["serve.daemon.streams"] == 1.0
    assert doc["counters"]["serve.daemon.events{stream=s}"] == len(events)
    assert "serve.daemon.ingest_events_per_sec" in doc["gauges"]
    assert "serve.daemon.queue_depth{stream=s}" in doc["gauges"]
    assert http_health[0].startswith(b"HTTP/1.0 200")
    assert http_404[0].startswith(b"HTTP/1.0 404")


def test_http_drain_endpoint_flips_health_to_503(fitted):
    meta, _ = fitted

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            lines = await send_raw(
                daemon.port, b"GET /drain HTTP/1.0\r\n\r\n", lines=8
            )
            assert lines[0].startswith(b"HTTP/1.0 200")
            assert daemon.draining
            await daemon.drain()

    asyncio.run(run())


# ------------------------------------------------------------- kill/restart


def test_kill_restart_cycle_loses_no_resolved_warnings(fitted):
    """Drain -> state file -> restart with baseline conserves every counter."""
    meta, test = fitted
    events = list(test)
    half = len(events) // 2
    first, second = events[:half], events[half:]

    async def run(evs, baseline):
        daemon = IngestDaemon(meta, CONFIG, baseline=baseline)
        async with daemon:
            responses = await send_frames(daemon.port, batch_frames("s", evs))
            assert all(r["ok"] for r in responses)
            return await daemon.drain()

    report1 = asyncio.run(run(first, None))
    # Kill: all that survives is the serialized state document.
    state_doc = state_to_dict(report1)
    restored = state_from_dict(state_doc)
    report2 = asyncio.run(run(second, restored))

    expected = oracle_stats(meta, first)
    expected.merge(oracle_stats(meta, second))
    total = report2.total()
    assert total == expected
    # Explicitly: nothing resolved in the first life was lost.
    o1 = oracle_stats(meta, first)
    assert total.warnings == o1.warnings + report2.combined.warnings
    assert total.hits >= report1.combined.hits
    assert total.events == len(events)


def test_stats_round_trip_preserves_every_field():
    stats = SessionStats(
        events=10,
        failures=3,
        warnings=4,
        hits=2,
        false_alarms=1,
        caught_failures=2,
        missed_failures=1,
        lead_seconds=[12.5, 90.0],
    )
    assert stats_from_dict(stats_to_dict(stats)) == stats


# ------------------------------------------------------------- lifecycle hook


class _RecordingManager:
    """ChunkConsumer test double: records barrier sizes, serves via pool."""

    def __init__(self, pool, reference):
        self.pool = pool
        self.reference = reference
        self.chunk_sizes = []

    def feed(self, chunk):
        self.chunk_sizes.append(len(chunk))
        return self.pool.process_store(chunk)


def test_manager_factory_gets_reference_then_fixed_chunks(fitted):
    """Lifecycle mode: reference window first, then deterministic barriers."""
    meta, test = fitted
    events = list(test)
    managers = []

    def factory(pool, reference):
        manager = _RecordingManager(pool, reference)
        managers.append(manager)
        return manager

    config = DaemonConfig(port=0, queue_bound=512, shards=2, chunk_events=32)
    reference_events = 48

    async def run():
        daemon = IngestDaemon(
            meta, config, manager_factory=factory, reference_events=reference_events
        )
        async with daemon:
            # Deliberately ragged wire batches: barrier positions must not care.
            await send_frames(daemon.port, batch_frames("s", events, batch=29))
            return await daemon.drain()

    report = asyncio.run(run())
    assert len(managers) == 1
    manager = managers[0]
    assert len(manager.reference) == reference_events
    served = len(events)
    # First fed chunk is the reference itself, then fixed 32-event barriers,
    # then the drain-time remainder — regardless of the ragged wire batches.
    full, rem = divmod(served - reference_events, 32)
    expected_sizes = [reference_events] + [32] * full + ([rem] if rem else [])
    assert manager.chunk_sizes == expected_sizes
    assert report.streams[0].stats == oracle_stats(meta, events)
    assert report.streams[0].processed == served


def test_store_dir_archives_accepted_events(fitted, tmp_path):
    """Every accepted event lands in the columnar archive, across restarts."""
    from repro.ras.columnar import is_columnar_dir, open_store

    meta, test = fitted
    events = list(test)
    half = len(events) // 2
    store_dir = tmp_path / "archive"
    config = DaemonConfig(
        port=0, queue_bound=512, shards=2, chunk_events=64,
        store_dir=str(store_dir),
    )

    async def run(evs, expected_total):
        async with IngestDaemon(meta, config) as daemon:
            responses = await send_frames(
                daemon.port, batch_frames("alpha", evs)
            )
            assert all(r["ok"] for r in responses)
            assert daemon.store_rows == expected_total
            return await daemon.drain()

    asyncio.run(run(events[:half], half))
    assert is_columnar_dir(store_dir)
    assert len(open_store(store_dir)) == half

    # A restarted daemon resumes the same archive append-only.
    shifted = [ev.with_time(ev.time + 10 * MINUTE) for ev in events[half:]]
    asyncio.run(run(shifted, len(events)))
    archive = open_store(store_dir)
    assert len(archive) == len(events)
    # The archive replays: times are intact and sorted on open.
    assert int(archive.times[0]) == min(ev.time for ev in events[:half])


def test_store_dir_rejected_events_not_archived(fitted, tmp_path):
    """Order-rejected events never reach the archive."""
    from repro.ras.columnar import open_store

    meta, test = fitted
    events = list(test)[:10]
    store_dir = tmp_path / "archive"
    config = DaemonConfig(
        port=0, queue_bound=512, shards=2, chunk_events=64,
        store_dir=str(store_dir),
    )
    stale = events[0].with_time(events[-1].time - 10 * MINUTE)

    async def run():
        async with IngestDaemon(meta, config) as daemon:
            frames = batch_frames("alpha", events) + [
                {
                    "op": "event",
                    "stream": "alpha",
                    "event": event_to_dict(stale),
                }
            ]
            responses = await send_frames(daemon.port, frames)
            assert not responses[-1]["ok"]
            return await daemon.drain()

    report = asyncio.run(run())
    assert report.streams[0].rejected_order == 1
    assert len(open_store(store_dir)) == len(events)


# ------------------------------------------------------------- action ledgers


def test_per_stream_ledger_matches_one_shot_replay(fitted):
    """A daemon-drained ledger is bit-identical to a one-shot replay of the
    same stream: the engine's chunk invariance, exercised over the wire."""
    from repro.actions import ActionEngine, CostModel, Ledger, build_policy
    from repro.ras.store import EventStore

    meta, test = fitted
    events = list(test)[:240]

    def factory(stream_id):
        return ActionEngine(
            build_policy("cost-aware"), CostModel(), seed=5,
            labels={"stream": stream_id},
        )

    async def run():
        async with IngestDaemon(meta, CONFIG, action_factory=factory) as daemon:
            responses = await send_frames(
                daemon.port, batch_frames("s", events, batch=50)
            )
            assert all(r["ok"] for r in responses)
            return await daemon.drain()

    report = asyncio.run(run())
    sr = report.streams[0]
    assert sr.ledger is not None

    store = EventStore.from_events(events)
    pool = DetectorPool(meta, shards=CONFIG.shards, key=CONFIG.key)
    warnings = pool.process_store(store)
    oracle = ActionEngine(build_policy("cost-aware"), CostModel(), seed=5)
    oracle.observe_store(store, list(warnings))
    assert oracle.finalize().digest() == sr.ledger.digest()

    # The state document carries the ledger counters (entries elided).
    doc = state_to_dict(report)
    assert set(doc["ledgers"]) == {"s"}
    restored = Ledger.from_dict(doc["ledgers"]["s"])
    assert restored.policy == "cost-aware"
    assert restored.net_node_seconds == sr.ledger.net_node_seconds
    assert doc["ledgers"]["s"]["settled"] == sr.ledger.settled
    assert restored.entries == []      # restart state elides entries


def test_drain_without_action_factory_has_no_ledger(fitted):
    meta, test = fitted

    async def run():
        async with IngestDaemon(meta, CONFIG) as daemon:
            responses = await send_frames(
                daemon.port, batch_frames("s", list(test)[:60])
            )
            assert all(r["ok"] for r in responses)
            return await daemon.drain()

    report = asyncio.run(run())
    assert report.streams[0].ledger is None
    assert "ledgers" not in state_to_dict(report)
