"""Tests for repro.mining.rules (generation, combination, matching)."""

import pytest

from repro.mining.rules import Rule, RuleMatcher, RuleSet, generate_rules
from repro.mining.transactions import EventSetDB


def fs(*items):
    return frozenset(items)


ITEMS = ["warnA", "warnB", "warnC", "fatalX", "fatalY", "noiseZ"]
A, B, C, X, Y, Z = range(6)
FATAL = fs(X, Y)


def make_db(rows):
    """rows: list of (body items tuple, head items tuple)."""
    return EventSetDB(
        bodies=[fs(*b) for b, _ in rows],
        heads=[fs(*h) for _, h in rows],
        item_names=ITEMS,
        fatal_items=FATAL,
    )


@pytest.fixture
def db():
    # {A,B} -> X in 3 of 4 occurrences of {A,B}; {C} -> Y always.
    rows = [
        ((A, B), (X,)),
        ((A, B), (X,)),
        ((A, B), (X,)),
        ((A, B), (Y,)),
        ((C,), (Y,)),
        ((C,), (Y,)),
        ((), (X,)),  # orphan fatal
    ]
    return make_db(rows)


def test_generate_rules_basic(db):
    rs = generate_rules(db, min_support=0.2, min_confidence=0.5)
    bodies = {r.body for r in rs}
    assert fs(A, B) in bodies
    assert fs(C) in bodies


def test_rule_combination_multi_head(db):
    rs = generate_rules(db, min_support=0.1, min_confidence=0.2)
    ab = next(r for r in rs if r.body == fs(A, B))
    # {A,B} -> X (0.75) and {A,B} -> Y (0.25) combine; P(any head|body) = 1.
    assert ab.heads == fs(X, Y)
    assert ab.confidence == pytest.approx(1.0)


def test_no_combination_keeps_single_heads(db):
    rs = generate_rules(db, min_support=0.1, min_confidence=0.2, combine=False)
    ab_rules = [r for r in rs if r.body == fs(A, B)]
    assert {tuple(r.heads) for r in ab_rules} == {(X,), (Y,)}


def test_rules_sorted_by_confidence(db):
    rs = generate_rules(db, min_support=0.1, min_confidence=0.1)
    confs = [r.confidence for r in rs]
    assert confs == sorted(confs, reverse=True)


def test_min_confidence_filters(db):
    rs = generate_rules(db, min_support=0.1, min_confidence=0.9, combine=False)
    assert all(r.confidence >= 0.9 for r in rs)


def test_min_support_filters():
    rows = [((A,), (X,))] + [((B,), (Y,))] * 99
    db = make_db(rows)
    rs = generate_rules(db, min_support=0.04, min_confidence=0.1)
    assert fs(A) not in {r.body for r in rs}


def test_generalization_pruning():
    # {A} -> X (weak, diluted) vs {A,B} -> X (strong): the general rule
    # must be pruned.
    rows = [((A, B), (X,))] * 6 + [((A,), (Y,))] * 4
    db = make_db(rows)
    rs = generate_rules(db, min_support=0.1, min_confidence=0.1,
                        prune_generalizations=True)
    bodies_heads = {(r.body, r.heads) for r in rs}
    # {A}->{X} has confidence 0.6, {A,B}->{X} has 1.0 -> {A}->{X} pruned.
    assert (fs(A, B), fs(X)) in bodies_heads
    assert all(not (b == fs(A) and X in h) for b, h in bodies_heads)


def test_pruning_keeps_more_confident_general_rule():
    # General rule strictly stronger than the specialization survives.
    rows = [((A,), (X,))] * 8 + [((A, B), (Y,))] * 2
    db = make_db(rows)
    rs = generate_rules(db, min_support=0.1, min_confidence=0.1,
                        prune_generalizations=True, combine=False)
    assert fs(A) in {r.body for r in rs}


def test_empty_db_yields_empty_ruleset():
    db = make_db([])
    rs = generate_rules(db)
    assert len(rs) == 0
    assert rs.best_match({A}) is None


def test_unknown_miner(db):
    with pytest.raises(ValueError, match="miner"):
        generate_rules(db, miner="magic")


def test_miners_agree(db):
    a = generate_rules(db, min_support=0.1, min_confidence=0.2, miner="apriori")
    f = generate_rules(db, min_support=0.1, min_confidence=0.2, miner="fpgrowth")
    assert {(r.body, r.heads, round(r.confidence, 9)) for r in a} == {
        (r.body, r.heads, round(r.confidence, 9)) for r in f
    }


def test_rule_validation():
    with pytest.raises(ValueError):
        Rule(body=fs(), heads=fs(X), confidence=0.5, support=0.1, support_count=1)
    with pytest.raises(ValueError):
        Rule(body=fs(A), heads=fs(), confidence=0.5, support=0.1, support_count=1)
    with pytest.raises(ValueError):
        Rule(body=fs(A), heads=fs(X), confidence=1.5, support=0.1, support_count=1)


def test_rule_format_figure3_style():
    r = Rule(body=fs(A, B), heads=fs(X), confidence=0.7, support=0.1,
             support_count=3)
    assert r.format(ITEMS) == "warnA warnB ==> fatalX: 0.7"


def test_best_match_highest_confidence(db):
    rs = generate_rules(db, min_support=0.1, min_confidence=0.1)
    best = rs.best_match({A, B, C})
    assert best is rs[0]
    assert rs.best_match({A}) is None or fs(A) <= {A}


def test_matching_requires_full_body(db):
    rs = generate_rules(db, min_support=0.1, min_confidence=0.1)
    matches = rs.matching({A})
    assert all(r.body <= {A} for r in matches)


def test_format_rules_limit(db):
    rs = generate_rules(db, min_support=0.1, min_confidence=0.1)
    assert len(rs.format_rules(limit=1).splitlines()) == 1


# ---------------------------------------------------------------------- #
# RuleMatcher
# ---------------------------------------------------------------------- #


@pytest.fixture
def ruleset():
    rules = [
        Rule(body=fs(A, B), heads=fs(X), confidence=0.9, support=0.2,
             support_count=4),
        Rule(body=fs(C), heads=fs(Y), confidence=0.6, support=0.2,
             support_count=2),
    ]
    return RuleSet(rules, ITEMS, FATAL)


def test_matcher_completes_on_last_item(ruleset):
    m = RuleMatcher(ruleset)
    assert m.add(A) == []
    completed = m.add(B)
    assert [r.body for r in completed] == [fs(A, B)]


def test_matcher_duplicate_items_no_refire(ruleset):
    m = RuleMatcher(ruleset)
    m.add(C)
    assert m.add(C) == []  # already satisfied; second arrival completes nothing


def test_matcher_remove_reactivates(ruleset):
    m = RuleMatcher(ruleset)
    m.add(A)
    m.add(B)
    m.remove(A)
    assert fs(A, B) not in {r.body for r in m.satisfied_rules()}
    assert [r.body for r in m.add(A)] == [fs(A, B)]


def test_matcher_multiplicity(ruleset):
    m = RuleMatcher(ruleset)
    m.add(A)
    m.add(A)
    m.add(B)
    m.remove(A)  # one copy left: rule stays satisfied
    assert fs(A, B) in {r.body for r in m.satisfied_rules()}


def test_matcher_remove_absent_raises(ruleset):
    with pytest.raises(ValueError):
        RuleMatcher(ruleset).remove(A)


def test_matcher_reset(ruleset):
    m = RuleMatcher(ruleset)
    m.add(C)
    m.reset()
    assert m.satisfied_rules() == []
    assert m.observed_items() == set()


def test_matcher_observed_items(ruleset):
    m = RuleMatcher(ruleset)
    m.add(A)
    m.add(Z)
    assert m.observed_items() == {A, Z}
