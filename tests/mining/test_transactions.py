"""Tests for repro.mining.transactions (event-set construction)."""

import pytest

from repro.mining.transactions import (
    EventSetDB,
    build_event_sets,
    build_tiled_windows,
)
from repro.ras.fields import Facility, Severity
from repro.ras.store import EventStore
from repro.taxonomy.classifier import TaxonomyClassifier
from tests.conftest import make_event


def _labeled(*events):
    return TaxonomyClassifier().classify_store(EventStore.from_events(events))


@pytest.fixture
def chain_store():
    """Two non-fatal precursors, then a fatal, then an isolated fatal."""
    return _labeled(
        make_event(time=100, severity=Severity.INFO,
                   entry="ddr error correction: single bit error corrected by ecc"),
        make_event(time=200, severity=Severity.INFO,
                   entry="interrupt mask register updated for memory unit"),
        make_event(time=400, severity=Severity.FAILURE, facility=Facility.KERNEL,
                   entry="communication failure on socket read: connection closed by peer"),
        make_event(time=9000, severity=Severity.FATAL, facility=Facility.KERNEL,
                   entry="uncorrectable torus error: retransmission limit exceeded"),
    )


def test_one_transaction_per_fatal(chain_store):
    db = build_event_sets(chain_store, rule_window=600)
    assert len(db) == 2


def test_body_contains_preceding_nonfatals(chain_store):
    db = build_event_sets(chain_store, rule_window=600)
    names = {db.name_of(i) for i in db.bodies[0]}
    assert names == {"ddrErrorCorrectionInfo", "maskInfo"}
    head_names = {db.name_of(i) for i in db.heads[0]}
    assert head_names == {"socketReadFailure"}


def test_window_excludes_old_events(chain_store):
    db = build_event_sets(chain_store, rule_window=250)
    # Only maskInfo (t=200) is within 250 s of the fatal at t=400.
    names = {db.name_of(i) for i in db.bodies[0]}
    assert names == {"maskInfo"}


def test_isolated_fatal_has_empty_body(chain_store):
    db = build_event_sets(chain_store, rule_window=600)
    assert db.bodies[1] == frozenset()
    assert db.no_precursor_fraction() == pytest.approx(0.5)


def test_window_is_strictly_before_fatal(chain_store):
    # An event at the same second as the fatal is NOT a precursor.
    extra = _labeled(
        make_event(time=400, severity=Severity.INFO,
                   entry="timer interrupt rollover serviced"),
        make_event(time=400, severity=Severity.FATAL, facility=Facility.KERNEL,
                   entry="kernel panic: unrecoverable condition detected"),
    )
    db = build_event_sets(extra, rule_window=600)
    assert db.bodies[0] == frozenset()


def test_fatal_events_never_in_bodies(anl_events):
    db = build_event_sets(anl_events, rule_window=900)
    for body in db.bodies:
        assert not (body & db.fatal_items)


def test_transactions_union(chain_store):
    db = build_event_sets(chain_store, rule_window=600)
    t = db.transactions()
    assert t[0] == db.bodies[0] | db.heads[0]


def test_requires_classified_store(tiny_store):
    with pytest.raises(ValueError, match="classified"):
        build_event_sets(tiny_store, rule_window=600)


def test_requires_positive_window(chain_store):
    with pytest.raises(ValueError):
        build_event_sets(chain_store, rule_window=0)


def test_tiled_windows_cover_failure_free_stretches():
    store = _labeled(
        make_event(time=100, severity=Severity.INFO,
                   entry="timer interrupt rollover serviced"),
        make_event(time=5000, severity=Severity.INFO,
                   entry="dma transfer error: descriptor retried"),
        make_event(time=9000, severity=Severity.FATAL, facility=Facility.KERNEL,
                   entry="kernel panic: unrecoverable condition detected"),
    )
    db = build_tiled_windows(store, window=600)
    # The window holding t=5000 has a body but no head.
    assert any(b and not h for b, h in zip(db.bodies, db.heads))
    # Windows with no events at all are skipped.
    assert len(db) == 3


def test_tiled_windows_empty_store():
    db = build_tiled_windows(
        TaxonomyClassifier().classify_store(EventStore.empty()), window=600
    )
    assert len(db) == 0


def test_no_precursor_fraction_empty_db():
    db = EventSetDB([], [], [], frozenset())
    assert db.no_precursor_fraction() == 0.0


def test_db_alignment_validated():
    with pytest.raises(ValueError):
        EventSetDB([frozenset()], [], [], frozenset())


def test_paper_no_precursor_range(anl_events):
    """The ANL profile plants a substantial no-precursor fraction."""
    db = build_event_sets(anl_events, rule_window=15 * 60)
    assert 0.1 < db.no_precursor_fraction() < 0.7


def _tiled_reference(events, window):
    """The pre-vectorization per-window loop, kept as the oracle."""
    import numpy as np

    t0 = int(events.times[0])
    t1 = int(events.times[-1]) + 1
    edges = np.arange(t0, t1 + window, window)
    starts = np.searchsorted(events.times, edges[:-1], "left")
    ends = np.searchsorted(events.times, edges[1:], "left")
    fatal_mask = events.fatal_mask()
    bodies, heads = [], []
    for s, e in zip(starts, ends):
        if s == e:
            continue
        sl = slice(int(s), int(e))
        cats = events.subcat_ids[sl]
        fm = fatal_mask[sl]
        bodies.append(frozenset(int(x) for x in np.unique(cats[~fm])))
        heads.append(frozenset(int(x) for x in np.unique(cats[fm])))
    return bodies, heads


@pytest.mark.parametrize("window", [60.0, 300.0, 337.5, 3600.0])
def test_tiled_windows_match_per_window_reference(anl_events, window):
    """The np.unique segment construction is bit-identical to the loop,
    including non-integer window widths (float edge arithmetic)."""
    db = build_tiled_windows(anl_events, window)
    ref_bodies, ref_heads = _tiled_reference(anl_events, window)
    assert db.bodies == ref_bodies
    assert db.heads == ref_heads
    assert all(isinstance(next(iter(b), 0), int) for b in db.bodies)
