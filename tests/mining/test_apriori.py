"""Tests for repro.mining.apriori on hand-checked databases."""

import pytest

from repro.mining.apriori import apriori, support_of


def fs(*items):
    return frozenset(items)


#: Classic textbook database.
DB = [
    fs(1, 2, 5),
    fs(2, 4),
    fs(2, 3),
    fs(1, 2, 4),
    fs(1, 3),
    fs(2, 3),
    fs(1, 3),
    fs(1, 2, 3, 5),
    fs(1, 2, 3),
]


def test_known_database_counts():
    result = apriori(DB, min_support=2 / 9)
    # Hand-checked frequent itemsets (min count 2).
    assert result[fs(1)] == 6
    assert result[fs(2)] == 7
    assert result[fs(3)] == 6
    assert result[fs(4)] == 2
    assert result[fs(5)] == 2
    assert result[fs(1, 2)] == 4
    assert result[fs(1, 3)] == 4
    assert result[fs(2, 3)] == 4
    assert result[fs(1, 5)] == 2
    assert result[fs(2, 5)] == 2
    assert result[fs(1, 2, 3)] == 2
    assert result[fs(1, 2, 5)] == 2
    # Infrequent itemsets absent.
    assert fs(3, 5) not in result
    assert fs(1, 4) not in result


def test_support_threshold_inclusive():
    # Support exactly at the threshold passes.
    db = [fs(1), fs(1), fs(2), fs(2)]
    result = apriori(db, min_support=0.5)
    assert fs(1) in result and fs(2) in result


def test_higher_support_prunes_more():
    low = apriori(DB, min_support=0.1)
    high = apriori(DB, min_support=0.5)
    assert set(high) <= set(low)
    assert len(high) < len(low)


def test_max_len_caps_itemset_size():
    result = apriori(DB, min_support=0.1, max_len=2)
    assert all(len(s) <= 2 for s in result)


def test_empty_database():
    assert apriori([], min_support=0.1) == {}


def test_empty_transactions_ignored():
    result = apriori([fs(), fs(1), fs(1)], min_support=0.5)
    assert result == {fs(1): 2}


def test_apriori_property_holds():
    """Every subset of a frequent itemset is frequent with >= count."""
    result = apriori(DB, min_support=0.2)
    for itemset, count in result.items():
        for item in itemset:
            sub = itemset - {item}
            if sub:
                assert sub in result
                assert result[sub] >= count


def test_invalid_parameters():
    with pytest.raises(ValueError):
        apriori(DB, min_support=1.5)
    with pytest.raises(ValueError):
        apriori(DB, min_support=0.1, max_len=0)


def test_support_of():
    counts = apriori(DB, min_support=0.2)
    assert support_of([1, 2], counts, len(DB)) == pytest.approx(4 / 9)
    assert support_of([99], counts, len(DB)) == 0.0
    with pytest.raises(ValueError):
        support_of([1], counts, 0)
