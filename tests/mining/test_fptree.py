"""Tests for repro.mining.fptree (FP-growth) — including Apriori equivalence."""

import pytest

from repro.mining.apriori import apriori
from repro.mining.fptree import fpgrowth
from repro.util.rng import as_generator


def fs(*items):
    return frozenset(items)


DB = [
    fs(1, 2, 5),
    fs(2, 4),
    fs(2, 3),
    fs(1, 2, 4),
    fs(1, 3),
    fs(2, 3),
    fs(1, 3),
    fs(1, 2, 3, 5),
    fs(1, 2, 3),
]


def test_known_database_matches_apriori():
    assert fpgrowth(DB, 2 / 9) == apriori(DB, 2 / 9)


@pytest.mark.parametrize("min_support", [0.1, 0.25, 0.5, 0.9])
def test_equivalence_random_databases(min_support):
    rng = as_generator(int(min_support * 100))
    for _ in range(5):
        n_items = int(rng.integers(3, 12))
        db = [
            frozenset(
                int(x)
                for x in rng.choice(
                    n_items, size=int(rng.integers(0, n_items)), replace=False
                )
            )
            for _ in range(int(rng.integers(1, 60)))
        ]
        assert fpgrowth(db, min_support) == apriori(db, min_support), db


def test_max_len_equivalence():
    assert fpgrowth(DB, 0.1, max_len=2) == apriori(DB, 0.1, max_len=2)


def test_empty_database():
    assert fpgrowth([], 0.1) == {}


def test_single_transaction():
    assert fpgrowth([fs(1, 2)], 1.0) == {
        fs(1): 1,
        fs(2): 1,
        fs(1, 2): 1,
    }


def test_invalid_parameters():
    with pytest.raises(ValueError):
        fpgrowth(DB, -0.1)
    with pytest.raises(ValueError):
        fpgrowth(DB, 0.1, max_len=0)
