"""Tests for repro.mining.incremental — bit-identity under adversarial schedules.

The incremental engine's whole contract is "exactly what from-scratch mining
would have produced, cheaper".  Every test here therefore compares against
:func:`apriori` / :func:`fpgrowth` / :func:`generate_rules` on the same
multiset, under schedules chosen to stress the delta machinery: evict
everything and refill, slide overlapping windows, add and evict the same
batch repeatedly, and cross the support threshold in both directions.
"""

import pytest

from repro.core.serialize import (
    SerializationError,
    incremental_miner_from_dict,
    incremental_miner_to_dict,
)
from repro.mining.apriori import apriori
from repro.mining.counts import min_count_for
from repro.mining.fptree import fpgrowth
from repro.mining.incremental import (
    CanonicalTree,
    IncrementalMiner,
    IncrementalRuleMiner,
)
from repro.mining.rules import generate_rules
from repro.mining.transactions import EventSetDB
from repro.util.rng import as_generator


def fs(*items):
    return frozenset(items)


def random_db(rng, n_items=10, max_rows=40):
    """A random transaction list (may include empty transactions)."""
    return [
        frozenset(
            int(x)
            for x in rng.choice(
                n_items, size=int(rng.integers(0, n_items)), replace=False
            )
        )
        for _ in range(int(rng.integers(0, max_rows)))
    ]


def assert_matches_scratch(miner, min_support, max_len=6):
    """Incremental itemsets must equal both from-scratch miners exactly."""
    current = [
        t for t, w in miner.transaction_counts().items() for _ in range(w)
    ]
    got = miner.itemsets(min_support, max_len)
    assert got == fpgrowth(current, min_support, max_len=max_len)
    assert got == apriori(current, min_support, max_len=max_len)


# ---------------------------------------------------------------------- #
# CanonicalTree
# ---------------------------------------------------------------------- #


def test_tree_add_remove_roundtrip():
    tree = CanonicalTree()
    tree.add([1, 2, 3], 2)
    tree.add([1, 2], 1)
    tree.remove([1, 2, 3], 2)
    tree.remove([1, 2], 1)
    assert tree.root.children == {}
    assert tree.paths(1) == []


def test_tree_paths_are_conditional_base():
    tree = CanonicalTree()
    tree.add([1, 2, 5], 1)
    tree.add([2, 5], 2)
    tree.add([5], 1)
    base = sorted((tuple(p), c) for p, c in tree.paths(5))
    assert base == [((), 1), ((1, 2), 1), ((2,), 2)]


def test_tree_remove_missing_raises_and_leaves_state_intact():
    tree = CanonicalTree()
    tree.add([1, 2], 1)
    with pytest.raises(ValueError):
        tree.remove([1, 3], 1)
    with pytest.raises(ValueError):
        tree.remove([1, 2], 2)  # present, but not with that weight
    assert tree.paths(2) == [([1], 1)]


# ---------------------------------------------------------------------- #
# IncrementalMiner: adversarial schedules vs from-scratch
# ---------------------------------------------------------------------- #


def test_empty_miner_yields_no_itemsets():
    miner = IncrementalMiner()
    assert miner.itemsets(0.1) == {}
    assert miner.n_transactions == 0


def test_single_transaction_window():
    miner = IncrementalMiner()
    miner.add([fs(1, 2)])
    assert_matches_scratch(miner, 1.0)
    assert miner.itemsets(1.0) == {fs(1): 1, fs(2): 1, fs(1, 2): 1}


def test_evict_all_then_refill():
    batch = [fs(1, 2), fs(2, 3), fs(1, 2, 3), fs(3)]
    miner = IncrementalMiner()
    miner.add(batch)
    assert_matches_scratch(miner, 0.25)
    miner.evict(batch)
    assert miner.n_transactions == 0
    assert miner.itemsets(0.25) == {}
    refill = [fs(4, 5), fs(4), fs(4, 5, 6)]
    miner.add(refill)
    assert_matches_scratch(miner, 0.3)


def test_repeated_add_evict_of_same_batch():
    stable = [fs(1, 2), fs(2, 3)] * 3
    churn = [fs(1, 2, 3), fs(3, 4)]
    miner = IncrementalMiner()
    miner.add(stable)
    for _ in range(4):
        miner.add(churn)
        assert_matches_scratch(miner, 0.2)
        miner.evict(churn)
        assert_matches_scratch(miner, 0.2)


def test_overlapping_sliding_windows():
    rng = as_generator(11)
    stream = [
        frozenset(
            int(x)
            for x in rng.choice(8, size=int(rng.integers(1, 5)), replace=False)
        )
        for _ in range(30)
    ]
    miner = IncrementalMiner()
    window = 12
    step = 4
    for start in range(0, len(stream) - window + 1, step):
        prev_start = start - step
        if prev_start < 0:
            miner.add(stream[:window])
        else:
            miner.evict(stream[prev_start:start])
            miner.add(stream[prev_start + window : start + window])
        assert_matches_scratch(miner, 0.15)


def test_support_threshold_boundary_crossings():
    # 10 transactions; item 7 appears in exactly 2 -> support 0.2.
    batch = [fs(1, 7), fs(2, 7)] + [fs(1, 2)] * 8
    miner = IncrementalMiner()
    miner.add(batch)
    at = miner.itemsets(0.2)  # count threshold == support count: included
    assert fs(7) in at
    above = miner.itemsets(0.21)  # raised threshold filters cached partitions
    assert fs(7) not in above
    below = miner.itemsets(0.1)  # lowered threshold forces full re-mine
    assert fs(7) in below and fs(1, 7) in below
    for support in (0.1, 0.2, 0.21, 0.5, 1.0):
        assert_matches_scratch(miner, support)


def test_threshold_raise_reuses_clean_suffixes_exactly():
    batch = [fs(1, 2, 3)] * 5 + [fs(2, 3)] * 3 + [fs(4)] * 2
    miner = IncrementalMiner()
    miner.add(batch)
    low = miner.itemsets(0.2)
    high = miner.itemsets(0.5)  # no delta in between: pure cache filter
    n = miner.n_transactions
    cut = min_count_for(0.5, n)
    assert high == {s: c for s, c in low.items() if c >= cut}
    assert_matches_scratch(miner, 0.5)


def test_randomized_schedule_matches_scratch():
    rng = as_generator(1234)
    miner = IncrementalMiner()
    live: list[frozenset] = []
    for _ in range(25):
        roll = rng.random()
        if roll < 0.55 or not live:
            batch = random_db(rng, n_items=9, max_rows=12)
            miner.add(batch)
            live.extend(batch)
        else:
            k = int(rng.integers(1, len(live) + 1))
            idx = sorted(
                (int(i) for i in rng.choice(len(live), size=k, replace=False)),
                reverse=True,
            )
            batch = [live.pop(i) for i in idx]
            miner.evict(batch)
        support = float(rng.choice([0.02, 0.05, 0.1, 0.3]))
        assert_matches_scratch(miner, support)


def test_evict_more_than_present_is_atomic():
    miner = IncrementalMiner()
    miner.add([fs(1, 2), fs(2, 3)])
    before = dict(miner.transaction_counts())
    with pytest.raises(ValueError):
        miner.evict([fs(1, 2), fs(1, 2)])  # second copy not present
    assert dict(miner.transaction_counts()) == before
    assert_matches_scratch(miner, 0.5)


def test_max_len_change_invalidates_cache():
    miner = IncrementalMiner()
    miner.add([fs(1, 2, 3)] * 4)
    short = miner.itemsets(0.2, max_len=2)
    assert fs(1, 2, 3) not in short
    full = miner.itemsets(0.2, max_len=6)
    assert fs(1, 2, 3) in full
    assert_matches_scratch(miner, 0.2, max_len=2)


# ---------------------------------------------------------------------- #
# IncrementalRuleMiner: rule-level bit-identity and snapshots
# ---------------------------------------------------------------------- #

ITEMS = ["warnA", "warnB", "warnC", "fatalX", "fatalY", "noiseZ"]
A, B, C, X, Y, Z = range(6)
FATAL = fs(X, Y)


def make_db(rows):
    return EventSetDB(
        bodies=[fs(*b) for b, _ in rows],
        heads=[fs(*h) for _, h in rows],
        item_names=ITEMS,
        fatal_items=FATAL,
    )


def ruleset_key(rs):
    """Bit-identity key: exact rule order, floats and metadata."""
    return (list(rs.rules), list(rs.item_names), rs.fatal_items)


def assert_rules_match(miner, db):
    incremental = miner.rules()
    scratch = generate_rules(
        db,
        min_support=miner.min_support,
        min_confidence=miner.min_confidence,
        max_len=miner.max_len,
        combine=miner.combine,
        prune_generalizations=miner.prune_generalizations,
    )
    assert ruleset_key(incremental) == ruleset_key(scratch)


ROWS = [
    ((A, B), (X,)),
    ((A, B), (X,)),
    ((A, B), (Y,)),
    ((C,), (Y,)),
    ((C,), (Y,)),
    ((B, C), (X,)),
    ((), (X,)),
    ((A,), ()),
]


def test_rule_miner_matches_generate_rules():
    db = make_db(ROWS)
    miner = IncrementalRuleMiner(min_support=0.1, min_confidence=0.2)
    added, evicted = miner.sync(db)
    assert (added, evicted) == (len(ROWS), 0)
    assert_rules_match(miner, db)


def test_rule_miner_sliding_sync_is_o_delta_and_exact():
    miner = IncrementalRuleMiner(min_support=0.1, min_confidence=0.2)
    for start in range(0, 4):
        rows = ROWS[start : start + 5]
        db = make_db(rows)
        added, evicted = miner.sync(db)
        assert added <= len(rows) and evicted <= len(ROWS)
        assert_rules_match(miner, db)
    # Re-sync with no change: zero delta, cached ruleset object reused.
    db = make_db(ROWS[3:8])
    assert miner.sync(db) == (0, 0)
    assert miner.rules() is miner.rules()


def test_rule_miner_zero_delta_reuses_ruleset_object():
    db = make_db(ROWS)
    miner = IncrementalRuleMiner(min_support=0.1, min_confidence=0.2)
    miner.sync(db)
    first = miner.rules()
    miner.sync(db)
    assert miner.rules() is first


def test_rule_miner_incompatible_names_resets():
    db = make_db(ROWS)
    miner = IncrementalRuleMiner(min_support=0.1, min_confidence=0.2)
    miner.sync(db)
    other = EventSetDB(
        bodies=[fs(A)],
        heads=[fs(X)],
        item_names=["different", *ITEMS[1:]],
        fatal_items=FATAL,
    )
    miner.sync(other)
    assert miner.item_names[0] == "different"
    assert_rules_match(miner, other)


def test_rule_miner_prefix_grown_names_are_compatible():
    db = make_db(ROWS)
    miner = IncrementalRuleMiner(min_support=0.1, min_confidence=0.2)
    miner.sync(db)
    grown = EventSetDB(
        bodies=[fs(*b) for b, _ in ROWS],
        heads=[fs(*h) for _, h in ROWS],
        item_names=ITEMS + ["lateW"],
        fatal_items=FATAL,
    )
    assert miner.sync(grown) == (0, 0)  # same transactions, wider table
    assert_rules_match(miner, grown)


def test_snapshot_roundtrip_preserves_rules():
    db = make_db(ROWS)
    miner = IncrementalRuleMiner(min_support=0.1, min_confidence=0.2)
    miner.sync(db)
    doc = incremental_miner_to_dict(miner)
    assert doc["kind"] == "incremental-miner"
    restored = incremental_miner_from_dict(doc)
    assert ruleset_key(restored.rules()) == ruleset_key(miner.rules())
    # The restored miner keeps syncing incrementally from where it left off.
    shifted = make_db(ROWS[2:])
    restored.sync(shifted)
    assert_rules_match(restored, shifted)


def test_snapshot_roundtrip_is_stable():
    db = make_db(ROWS)
    miner = IncrementalRuleMiner(min_support=0.1, min_confidence=0.2)
    miner.sync(db)
    doc = incremental_miner_to_dict(miner)
    again = incremental_miner_to_dict(incremental_miner_from_dict(doc))
    assert doc == again


def test_snapshot_rejects_foreign_documents():
    with pytest.raises(SerializationError):
        incremental_miner_from_dict({"kind": "something-else"})
    with pytest.raises(SerializationError):
        incremental_miner_from_dict(
            {"format_version": 999, "kind": "incremental-miner", "state": {}}
        )


def test_rule_miner_randomized_windows_match_scratch():
    rng = as_generator(77)
    miner = IncrementalRuleMiner(min_support=0.1, min_confidence=0.2)
    stream = [
        (
            tuple(
                int(x)
                for x in rng.choice(
                    [A, B, C, Z], size=int(rng.integers(0, 4)), replace=False
                )
            ),
            tuple(
                int(x)
                for x in rng.choice(
                    [X, Y], size=int(rng.integers(0, 2)), replace=False
                )
            ),
        )
        for _ in range(24)
    ]
    for start in range(0, 16, 3):
        db = make_db(stream[start : start + 8])
        miner.sync(db)
        assert_rules_match(miner, db)
