"""Tests for repro.lifecycle.manager (the managed serving loop)."""

from __future__ import annotations

import pytest

from repro.evaluation.spec import PredictorSpec
from repro.lifecycle import (
    DriftMonitor,
    LifecycleManager,
    ModelRegistry,
    Retrainer,
    RetrainPolicy,
)
from repro.serve import DetectorPool


@pytest.fixture
def managed(two_models, tmp_path):
    """A manager over the live stream with a count-based retrain policy."""
    meta_a, _, live = two_models
    registry = ModelRegistry(tmp_path / "reg")
    spec = PredictorSpec.of("meta")
    base = registry.save(meta_a, spec=spec, tags=("base",))
    pool = DetectorPool(meta_a, shards=2)
    monitor = DriftMonitor(live.select(slice(0, 64)), window=64)
    policy = RetrainPolicy(every_events=60, cooldown_events=50)
    retrainer = Retrainer(spec, registry, window_events=500, seed=11)
    manager = LifecycleManager(
        pool, monitor, policy, retrainer, serving_snapshot=base.snapshot_id
    )
    return manager, registry, base, live


def test_run_retrains_on_count_and_chains_lineage(managed):
    manager, registry, base, live = managed
    report = manager.run(live, chunk_events=40)
    assert report.events == len(live)
    assert report.retrains >= 2
    assert report.stats is not None and report.stats.events == len(live)
    # Every swap is registered, parents chain back to the base snapshot.
    chain = registry.lineage("latest")
    assert [s.snapshot_id for s in chain][-1] == base.snapshot_id
    assert len(chain) == report.retrains + 1
    assert report.swaps[0].parent == base.snapshot_id
    assert manager.serving_snapshot == report.swaps[-1].snapshot_id
    # Swap positions land exactly on chunk barriers.
    assert all(s.at_event % 40 == 0 for s in report.swaps)


def test_run_is_deterministic(two_models, tmp_path):
    meta_a, _, live = two_models
    spec = PredictorSpec.of("meta")

    def run(root):
        registry = ModelRegistry(root)
        base = registry.save(meta_a, spec=spec)
        manager = LifecycleManager(
            DetectorPool(meta_a, shards=2),
            DriftMonitor(live.select(slice(0, 64)), window=64),
            RetrainPolicy(every_events=60, cooldown_events=50),
            Retrainer(spec, registry, window_events=500, seed=11),
            serving_snapshot=base.snapshot_id,
        )
        report = manager.run(live, chunk_events=40)
        return (
            report.warnings,
            [s.snapshot_id for s in report.swaps],
            [round(sig.score, 12) for sig in report.signals],
        )

    assert run(tmp_path / "a") == run(tmp_path / "b")


def test_no_policy_trigger_means_no_retrain(two_models, tmp_path):
    meta_a, _, live = two_models
    registry = ModelRegistry(tmp_path)
    manager = LifecycleManager(
        DetectorPool(meta_a, shards=2),
        DriftMonitor(live.select(slice(0, 64)), window=64),
        RetrainPolicy(),  # no count trigger, drift disabled
        Retrainer(PredictorSpec.of("meta"), registry, seed=1),
    )
    report = manager.run(live, chunk_events=50)
    assert report.retrains == 0
    assert registry.snapshot_ids() == []
    assert report.warnings > 0  # the pool still served traffic


def test_feed_returns_chunk_warnings_and_advances_state(managed):
    manager, _, _, live = managed
    chunk = live.select(slice(0, 50))
    warnings = manager.feed(chunk)
    assert manager.events_fed == 50
    assert manager.retrainer.window_size == 50
    assert isinstance(warnings, list)


def test_chunk_events_must_be_positive(managed):
    manager, _, _, live = managed
    with pytest.raises(ValueError):
        manager.run(live, chunk_events=0)


def test_swap_events_record_retrain_latency(managed):
    manager, _, _, live = managed
    report = manager.run(live, chunk_events=40)
    assert report.retrains >= 1
    assert all(s.retrain_seconds > 0.0 for s in report.swaps)
