"""Tests for repro.lifecycle.drift (PSI/chi-square monitor, precision ring)."""

from __future__ import annotations

import pytest

from repro.lifecycle import (
    DriftMonitor,
    PrecisionTracker,
    chi_square_score,
    psi_score,
    subcategory_counts,
)
from repro.obs import MetricsRegistry, use
from repro.online.resolution import SessionStats


# ------------------------------------------------------------ the scores


def test_psi_zero_for_identical_histograms():
    h = {"a": 40, "b": 30, "c": 30}
    assert psi_score(h, h) == pytest.approx(0.0)
    # chi-square retains a tiny smoothing residual (expected counts are
    # computed from the smoothed reference); it must stay negligible.
    assert chi_square_score(h, dict(h)) == pytest.approx(0.0, abs=0.01)


def test_psi_grows_with_shift_magnitude():
    ref = {"a": 50, "b": 50}
    mild = psi_score(ref, {"a": 60, "b": 40})
    severe = psi_score(ref, {"a": 95, "b": 5})
    assert 0.0 < mild < severe
    assert severe > 0.25  # the conventional "shifted" threshold


def test_scores_finite_on_disjoint_label_sets():
    # Add-half smoothing keeps log/0 and /0 out of both statistics.
    ref = {"a": 100}
    live = {"b": 100}
    assert psi_score(ref, live) > 1.0
    assert chi_square_score(ref, live) > 0.0


def test_empty_histograms_score_zero():
    assert psi_score({}, {}) == 0.0
    assert chi_square_score({"a": 3}, {}) == 0.0


# ------------------------------------------------------ precision tracker


def test_precision_tracker_diffs_cumulative_stats():
    tracker = PrecisionTracker(window=8)
    assert tracker.precision() is None
    stats = SessionStats()
    stats.hits, stats.false_alarms = 3, 1
    tracker.observe_stats(stats)
    assert tracker.precision() == pytest.approx(0.75)
    # Same snapshot again: no new resolutions, nothing double-counted.
    tracker.observe_stats(stats)
    assert tracker.resolved == 4
    stats.false_alarms = 5
    tracker.observe_stats(stats)
    assert tracker.precision() == pytest.approx(3 / 8)


def test_precision_tracker_window_evicts_oldest():
    tracker = PrecisionTracker(window=4)
    tracker.observe_resolutions(hits=4, false_alarms=0)
    tracker.observe_resolutions(hits=0, false_alarms=4)
    assert tracker.precision() == 0.0  # the four hits scrolled out


def test_precision_tracker_rejects_negative_deltas():
    tracker = PrecisionTracker()
    with pytest.raises(ValueError):
        tracker.observe_resolutions(hits=-1, false_alarms=0)


# ------------------------------------------------------------ the monitor


def test_monitor_silent_until_window_full():
    monitor = DriftMonitor({"a": 50, "b": 50}, window=100, threshold=0.25)
    monitor.observe_labels(["c"] * 99)  # maximally shifted but warming up
    signal = monitor.evaluate()
    assert signal.score > 0.25 and not signal.drifted
    monitor.observe("c")
    assert monitor.evaluate().drifted


def test_monitor_fires_on_injected_subcategory_shift():
    monitor = DriftMonitor({"a": 60, "b": 40}, window=64, threshold=0.25)
    monitor.observe_labels(["a"] * 38 + ["b"] * 26)  # matches reference
    assert not monitor.evaluate().drifted
    monitor.observe_labels(["b"] * 64)  # the shift scrolls the window
    signal = monitor.evaluate()
    assert signal.drifted and signal.window_events == 64


def _biased_slice(store):
    """An injected subcategory shift: drop the store's 5 dominant labels.

    Deterministic (pure counting over a seeded store) and guaranteed to
    change the mix — the head of the distribution vanishes entirely.
    """
    import numpy as np

    counts = subcategory_counts(store)
    top = {k for k, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:5]}
    table = store.subcat_table
    mask = np.array([table[i] not in top for i in store.subcat_ids.tolist()])
    return store.select(np.flatnonzero(mask))


def test_monitor_silent_on_stationary_synthetic_stream(anl_events):
    """Interleaved halves of one workload: same mix, no drift signal."""
    import numpy as np

    even = anl_events.select(np.arange(0, len(anl_events), 2))
    odd = anl_events.select(np.arange(1, len(anl_events), 2))
    monitor = DriftMonitor(even, window=len(odd), threshold=0.25)
    monitor.observe_store(odd)
    signal = monitor.evaluate()
    assert monitor.window_full
    assert not signal.drifted, f"stationary stream scored PSI {signal.score}"


def test_monitor_fires_on_injected_store_shift(anl_events):
    """Removing the dominant subcategories is an unmistakable shift."""
    biased = _biased_slice(anl_events)
    monitor = DriftMonitor(anl_events, window=len(biased), threshold=0.25)
    monitor.observe_store(biased)
    signal = monitor.evaluate()
    assert signal.drifted
    assert signal.chi_square > 0.0


def test_monitor_is_deterministic(anl_events):
    biased = _biased_slice(anl_events)

    def run():
        m = DriftMonitor(anl_events, window=128)
        m.observe_store(biased)
        return m.score()

    assert run() == run()


def test_rebase_establishes_new_normal(anl_events):
    biased = _biased_slice(anl_events)
    monitor = DriftMonitor(anl_events, window=len(biased), threshold=0.25)
    monitor.observe_store(biased)
    assert monitor.evaluate().drifted
    monitor.rebase(biased)  # retrained on the new workload
    assert not monitor.evaluate().drifted  # window cleared, warming up
    monitor.observe_store(biased)
    assert not monitor.evaluate().drifted  # new normal matches reference


def test_top_label_bucketing_bounds_the_bin_count(anl_events):
    from repro.lifecycle import OTHER_LABEL

    monitor = DriftMonitor(anl_events, window=64, top_labels=10)
    assert len(monitor.reference) <= 11
    assert OTHER_LABEL in monitor.reference
    unbucketed = DriftMonitor(anl_events, window=64, top_labels=None)
    assert len(unbucketed.reference) == len(subcategory_counts(anl_events))


def test_monitor_window_eviction_keeps_counts_consistent():
    monitor = DriftMonitor({"a": 1, "b": 1}, window=4)
    monitor.observe_labels(["a", "a", "b", "b", "a", "a"])
    assert monitor.live_counts() == {"b": 2, "a": 2}
    assert sum(monitor.live_counts().values()) == 4


def test_evaluate_records_gauges_and_precision():
    registry = MetricsRegistry()
    monitor = DriftMonitor({"a": 1}, window=4)
    stats = SessionStats()
    stats.hits, stats.false_alarms = 1, 1
    with use(registry):
        signal = monitor.evaluate(stats)
    assert registry.gauges["lifecycle.drift_score"] == signal.score
    assert "lifecycle.drift_chi2" in registry.gauges
    assert registry.gauges["lifecycle.live_precision"] == pytest.approx(0.5)


def test_reference_must_be_non_empty():
    with pytest.raises(ValueError, match="reference histogram"):
        DriftMonitor({})


def test_subcategory_counts_passthrough(anl_events):
    counts = subcategory_counts(anl_events)
    assert counts and sum(counts.values()) <= len(anl_events)
