"""Tests for repro.lifecycle.retrain (policy, off-hot-path fit, retrainer)."""

from __future__ import annotations

import pytest

from repro.core.serialize import model_to_dict
from repro.evaluation.spec import PredictorSpec
from repro.lifecycle import ModelRegistry, Retrainer, RetrainPolicy, fit_spec


# --------------------------------------------------------------- policy


def test_policy_count_trigger_and_reset():
    policy = RetrainPolicy(every_events=100, cooldown_events=0)
    policy.observe_events(99)
    assert not policy.decide()
    policy.observe_events(1)
    decision = policy.decide()
    assert decision and decision.reason == "count"
    policy.mark_retrained()
    assert not policy.decide()
    assert policy.retrains == 1


def test_policy_drift_trigger_outranks_count():
    policy = RetrainPolicy(every_events=10, on_drift=True, cooldown_events=0)
    policy.observe_events(50)
    assert policy.decide(drifted=True).reason == "drift"
    assert policy.decide(drifted=False).reason == "count"


def test_policy_drift_ignored_unless_enabled():
    policy = RetrainPolicy(on_drift=False)
    policy.observe_events(10_000)
    assert not policy.decide(drifted=True)


def test_policy_cooldown_suppresses_thrash():
    policy = RetrainPolicy(on_drift=True, cooldown_events=100)
    # First retrain may happen immediately (no cooldown before any retrain).
    assert policy.decide(drifted=True)
    policy.mark_retrained()
    policy.observe_events(99)
    assert not policy.decide(drifted=True)  # inside cooldown
    policy.observe_events(1)
    assert policy.decide(drifted=True)  # cooldown elapsed


def test_policy_validates_parameters():
    with pytest.raises(ValueError):
        RetrainPolicy(every_events=0)
    with pytest.raises(ValueError):
        RetrainPolicy(cooldown_events=-1)
    with pytest.raises(ValueError):
        RetrainPolicy().observe_events(-5)


# ------------------------------------------------------------- fit_spec


@pytest.fixture(scope="module")
def train_window(anl_events):
    return anl_events.select(slice(0, int(len(anl_events) * 0.6)))


def test_fit_spec_serial_produces_fitted_predictor(train_window):
    predictor, cache_hit = fit_spec(PredictorSpec.of("meta"), train_window)
    assert predictor.is_fitted and cache_hit is False


def test_fit_spec_worker_matches_serial(train_window):
    """The off-hot-path (worker process) fit is bit-identical to in-process."""
    spec = PredictorSpec.of("meta")
    serial, _ = fit_spec(spec, train_window, jobs=1)
    shipped, _ = fit_spec(spec, train_window, jobs=2)
    assert model_to_dict(shipped) == model_to_dict(serial)


def test_fit_spec_uses_artifact_cache(train_window, tmp_path):
    spec = PredictorSpec.of("meta")
    cache_dir = tmp_path / "cache"
    first, hit1 = fit_spec(spec, train_window, cache_dir=cache_dir)
    second, hit2 = fit_spec(spec, train_window, cache_dir=cache_dir)
    assert (hit1, hit2) == (False, True)
    assert model_to_dict(second) == model_to_dict(first)


# ------------------------------------------------------------ retrainer


def test_retrainer_window_trims_to_newest(anl_events, tmp_path):
    retrainer = Retrainer(
        PredictorSpec.of("meta"), ModelRegistry(tmp_path), window_events=100
    )
    assert retrainer.window is None and retrainer.window_size == 0
    retrainer.extend(anl_events.select(slice(0, 80)))
    assert retrainer.window_size == 80
    retrainer.extend(anl_events.select(slice(80, 160)))
    assert retrainer.window_size == 100
    # The window holds the *newest* 100 events.
    assert retrainer.window.times[-1] == anl_events.times[159]
    assert retrainer.window.times[0] == anl_events.times[60]


def test_retrainer_empty_window_is_an_error(tmp_path):
    retrainer = Retrainer(PredictorSpec.of("meta"), ModelRegistry(tmp_path))
    with pytest.raises(ValueError, match="window is empty"):
        retrainer.retrain()


def test_retrainer_registers_snapshot_with_lineage(anl_events, tmp_path):
    registry = ModelRegistry(tmp_path)
    spec = PredictorSpec.of("meta")
    retrainer = Retrainer(spec, registry, window_events=300, seed=5)
    retrainer.extend(anl_events.select(slice(0, 250)))
    snap1, predictor1 = retrainer.retrain(note="first")
    assert predictor1.is_fitted
    assert snap1.spec == spec and snap1.train_events == 250
    assert registry.resolve("latest") == snap1.snapshot_id

    retrainer.extend(anl_events.select(slice(250, len(anl_events))))
    snap2, _ = retrainer.retrain(parent=snap1.snapshot_id, note="second")
    chain = registry.lineage(snap2.snapshot_id)
    assert [s.note for s in chain] == ["second", "first"]
    assert retrainer.retrain_count == 2


def test_retrainer_seeding_is_deterministic(anl_events, tmp_path):
    """Same seed, same window, same retrain index -> same snapshot id."""
    spec = PredictorSpec.of("meta")

    def run(root):
        registry = ModelRegistry(root)
        retrainer = Retrainer(spec, registry, window_events=200, seed=42)
        retrainer.extend(anl_events.select(slice(0, 200)))
        return retrainer.retrain()[0].snapshot_id

    assert run(tmp_path / "a") == run(tmp_path / "b")


# --------------------------------------------------- incremental retrains


def test_retrainer_incremental_matches_from_scratch(anl_events, tmp_path):
    """O(delta) refits must register byte-identical snapshots."""
    spec = PredictorSpec.of("meta")

    def run(root, incremental):
        registry = ModelRegistry(root)
        retrainer = Retrainer(
            spec, registry, window_events=250, seed=3, incremental=incremental
        )
        ids = []
        for start in range(0, 500, 125):
            retrainer.extend(anl_events.select(slice(start, start + 125)))
            ids.append(retrainer.retrain()[0].snapshot_id)
        return ids

    plain = run(tmp_path / "plain", False)
    fast = run(tmp_path / "fast", True)
    assert plain == fast  # snapshot ids are content hashes of learned state


def test_retrainer_incremental_disabled_has_no_fitter(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
    retrainer = Retrainer(PredictorSpec.of("meta"), ModelRegistry(tmp_path))
    assert retrainer.fitter is None
    assert retrainer.fitter_state() is None


def test_retrainer_unsupported_kind_skips_fitter(tmp_path):
    retrainer = Retrainer(
        PredictorSpec.statistical(), ModelRegistry(tmp_path), incremental=True
    )
    assert retrainer.fitter is None


def test_retrainer_fitter_state_roundtrip(anl_events, tmp_path):
    """A restarted daemon restores O(delta) refits from the saved state."""
    spec = PredictorSpec.rule(rule_window=900.0)
    registry = ModelRegistry(tmp_path / "a")
    retrainer = Retrainer(
        spec, registry, window_events=300, incremental=True
    )
    retrainer.extend(anl_events.select(slice(0, 300)))
    snap1, _ = retrainer.retrain()
    doc = retrainer.fitter_state()
    assert doc is not None and doc["kind"] == "incremental-miner"

    revived = Retrainer(
        spec, ModelRegistry(tmp_path / "b"), window_events=300,
        incremental=True,
    )
    revived.restore_fitter_state(doc)
    revived.extend(anl_events.select(slice(0, 300)))
    snap2, _ = revived.retrain()
    assert snap2.snapshot_id == snap1.snapshot_id
    # The restored miner really was adopted, not rebuilt: zero sync delta.
    assert revived.fitter is not None
    assert revived.fitter.zero_delta_fits == 1
