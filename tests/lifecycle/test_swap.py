"""Hot-swap equivalence: a mid-stream swap must be invisible in the output.

The lifecycle design's central claim (docs/lifecycle.md): swapping a new
model into a live session at a chunk barrier produces a post-barrier
warning stream **element-for-element identical** to stopping the old
session at that barrier and cold-starting the new model on the remaining
stream.  These tests pin that claim at both the session and the pool level,
plus the zero-downtime half of the bargain — warnings the old model issued
before the barrier still resolve afterwards.
"""

from __future__ import annotations

import pytest

from repro.online import OnlineSession
from repro.serve import DetectorPool

from tests.lifecycle.conftest import warning_key


def _split(live, frac=0.5):
    cut = int(len(live) * frac)
    return live.select(slice(0, cut)), live.select(slice(cut, len(live)))


# ------------------------------------------------------------- session


def test_session_swap_equals_cold_restart(two_models):
    meta_a, meta_b, live = two_models
    head, tail = _split(live)

    hot = OnlineSession(meta_a)
    hot.process_store(head)
    hot.swap_model(meta_b)
    swapped_tail = hot.process_store(tail)

    cold = OnlineSession(meta_b)
    cold_tail = cold.process_store(tail)

    assert swapped_tail, "split emits no post-barrier warnings (vacuous test)"
    assert warning_key(swapped_tail) == warning_key(cold_tail)
    # The new model really is different: the old one answers differently.
    old_model_tail = OnlineSession(meta_a).process_store(tail)
    assert warning_key(swapped_tail) != warning_key(old_model_tail)


def test_session_swap_equals_cold_restart_per_event(two_models):
    """The same equivalence through the event-at-a-time path."""
    meta_a, meta_b, live = two_models
    head, tail = _split(live)

    hot = OnlineSession(meta_a)
    for ev in head:
        hot.process(ev)
    hot.swap_model(meta_b)
    swapped = [w for ev in tail for w in hot.process(ev)]

    cold = OnlineSession(meta_b)
    cold_tail = [w for ev in tail for w in cold.process(ev)]

    assert warning_key(swapped) == warning_key(cold_tail)


def test_swap_preserves_pending_warning_resolution(two_models):
    """Old-model warnings keep resolving — the zero-downtime advantage."""
    meta_a, meta_b, live = two_models
    head, tail = _split(live)

    hot = OnlineSession(meta_a)
    head_warnings = hot.process_store(head)
    hot.swap_model(meta_b)
    tail_warnings = hot.process_store(tail)
    stats = hot.finish()
    # Every warning either model issued is accounted for: resolution state
    # survived the swap (a cold restart would orphan the pending ones).
    assert stats.warnings == len(head_warnings) + len(tail_warnings)
    assert stats.hits + stats.false_alarms == stats.warnings
    assert stats.events == len(live)


def test_swap_requires_fitted_model(two_models):
    from repro.meta.stacked import MetaLearner

    meta_a, _, _ = two_models
    pool = DetectorPool(meta_a, shards=2)
    with pytest.raises(ValueError, match="fitted"):
        pool.swap_model(MetaLearner())
    with pytest.raises(TypeError, match="MetaLearner"):
        pool.swap_model(object())


# ---------------------------------------------------------------- pool


def test_pool_swap_equals_cold_pool(two_models):
    meta_a, meta_b, live = two_models
    head, tail = _split(live)

    hot_pool = DetectorPool(meta_a, shards=3)
    hot_pool.process_store(head)
    swapped = hot_pool.swap_model(meta_b)
    assert swapped >= 1  # at least one live session existed
    hot_tail = hot_pool.process_store(tail)

    cold_pool = DetectorPool(meta_b, shards=3)
    cold_tail = cold_pool.process_store(tail)

    assert hot_tail, "split emits no post-barrier warnings (vacuous test)"
    assert warning_key(hot_tail) == warning_key(cold_tail)


def test_pool_swap_covers_lazily_created_sessions(two_models):
    """Shards first touched *after* the swap also serve the new model."""
    meta_a, meta_b, live = two_models
    head, tail = _split(live, frac=0.2)

    pool = DetectorPool(meta_a, shards=1)  # shard 0 only, for determinism
    pool.process_store(head)
    pool.swap_model(meta_b)
    assert pool.meta is meta_b
    assert pool.session(0).detector.meta is meta_b


def test_pool_swap_accepts_meta_bearing_objects(two_models, fitted_predictors):
    meta_a, _, _ = two_models
    pool = DetectorPool(meta_a, shards=2)
    pool.session(0)  # force one live session
    three_phase = fitted_predictors["three-phase"]
    pool.swap_model(three_phase)  # duck-typed: exposes .meta
    assert pool.meta is three_phase.meta


def test_pool_swap_emits_metrics(two_models):
    from repro.obs import MetricsRegistry, use

    meta_a, meta_b, live = two_models
    head, _ = _split(live)
    registry = MetricsRegistry()
    with use(registry):
        pool = DetectorPool(meta_a, shards=2)
        pool.process_store(head)
        pool.swap_model(meta_b)
    assert registry.counters.get("serve.swaps") == 1
    assert len(registry.histograms.get("serve.swap_seconds", [])) == 1
    assert "serve.swap_pending_warnings" in registry.histograms
