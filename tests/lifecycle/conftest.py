"""Fixtures for the lifecycle suite: fitted models and a split live stream."""

from __future__ import annotations

import pytest

from repro.meta.stacked import MetaLearner
from repro.util.timeutil import MINUTE


@pytest.fixture(scope="module")
def two_models(anl_events):
    """Two differently-fitted meta-learners plus the held-out live stream.

    ``meta_a`` trains on the first half of the events, ``meta_b`` on the
    30-70% band with a different prediction window; the live stream is the
    second half.  This split is chosen so that both models emit warnings on
    the live stream *and* emit different ones — the swap-equivalence tests
    assert both, guarding against a vacuous pass on empty streams.
    """
    n = len(anl_events)
    meta_a = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_events.select(slice(0, int(n * 0.5))))
    meta_b = MetaLearner(
        prediction_window=20 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_events.select(slice(int(n * 0.3), int(n * 0.7))))
    live = anl_events.select(slice(int(n * 0.5), n))
    return meta_a, meta_b, live


def warning_key(warnings):
    """Element-for-element identity of a warning stream."""
    return [
        (w.issued_at, w.horizon_start, w.horizon_end, w.confidence,
         w.source, w.detail)
        for w in warnings
    ]
