"""Tests for repro.lifecycle.registry (the versioned model store)."""

from __future__ import annotations

import json

import pytest

from repro.cache import store_fingerprint
from repro.core.pipeline import ThreePhasePredictor
from repro.core.serialize import model_to_dict, registered_kinds
from repro.evaluation.spec import PredictorSpec
from repro.lifecycle import ModelRegistry, RegistryError
from repro.meta.stacked import MetaLearner


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "reg")


# ------------------------------------------------------------- save/load


@pytest.mark.parametrize("kind", sorted(registered_kinds()))
def test_every_codec_kind_snapshots_and_reloads(kind, fitted_predictors, registry):
    predictor = fitted_predictors[kind]
    snap = registry.save(predictor, spec=PredictorSpec.of(kind))
    assert snap.kind == kind
    loaded = registry.load(snap.snapshot_id)
    # Registry storage is the codec round trip (see
    # tests/properties/test_codec_properties.py); identity at the document
    # level implies identity of behaviour.
    assert model_to_dict(loaded) == model_to_dict(predictor)


def test_save_is_idempotent_and_content_addressed(fitted_predictors, registry):
    meta = fitted_predictors["meta"]
    first = registry.save(meta, spec=PredictorSpec.of("meta"))
    second = registry.save(meta, spec=PredictorSpec.of("meta"))
    assert first.snapshot_id == second.snapshot_id
    assert second.seq == first.seq  # no new entry was created
    assert len(registry.snapshot_ids()) == 1


def test_snapshot_id_tracks_provenance(fitted_predictors, registry, anl_events):
    meta = fitted_predictors["meta"]
    spec = PredictorSpec.of("meta")
    plain = registry.save(meta, spec=spec)
    with_store = registry.save(
        meta, spec=spec, store_fingerprint=store_fingerprint(anl_events)
    )
    # Same bytes, different training provenance -> different identity.
    assert plain.snapshot_id != with_store.snapshot_id
    assert with_store.seq == plain.seq + 1


def test_seq_is_monotonic_without_wall_clock(fitted_predictors, registry):
    seqs = [
        registry.save(fitted_predictors[kind], spec=PredictorSpec.of(kind)).seq
        for kind in sorted(registered_kinds())
    ]
    assert seqs == sorted(seqs)
    assert seqs[0] == 1
    stored = registry.list()
    assert [s.seq for s in stored] == seqs


def test_manifest_preserves_spec_and_fit_token(fitted_predictors, registry):
    spec = PredictorSpec.of("meta")
    snap = registry.save(
        fitted_predictors["meta"], spec=spec, train_events=123, note="first"
    )
    got = registry.get(snap.snapshot_id)
    assert got.spec == spec
    assert got.fit_token == spec.fit_token()
    assert got.train_events == 123
    assert got.note == "first"


def test_load_meta_unwraps_three_phase(fitted_predictors, registry):
    registry.save(fitted_predictors["three-phase"])
    meta = registry.load_meta("latest")
    assert isinstance(meta, MetaLearner) and meta.is_fitted

    registry.save(fitted_predictors["statistical"])
    with pytest.raises(RegistryError, match="not a servable"):
        registry.load_meta("latest")


def test_loaded_three_phase_type(fitted_predictors, registry):
    snap = registry.save(fitted_predictors["three-phase"])
    assert isinstance(registry.load(snap.snapshot_id), ThreePhasePredictor)


# ------------------------------------------------------------ resolution


def test_resolve_tag_prefix_and_latest(fitted_predictors, registry):
    snap = registry.save(
        fitted_predictors["meta"], spec=PredictorSpec.of("meta"), tags=("prod",)
    )
    sid = snap.snapshot_id
    assert registry.resolve("latest") == sid
    assert registry.resolve("prod") == sid
    assert registry.resolve(sid) == sid
    assert registry.resolve(sid[:8]) == sid


def test_resolve_rejects_unknown_short_and_ambiguous(fitted_predictors, registry):
    with pytest.raises(RegistryError, match="unknown registry ref"):
        registry.resolve("nosuchtag")
    snap = registry.save(fitted_predictors["meta"])
    # Too-short prefixes never resolve, even when unambiguous.
    with pytest.raises(RegistryError, match="unknown registry ref"):
        registry.resolve(snap.snapshot_id[:4])
    with pytest.raises(RegistryError, match="empty"):
        registry.resolve("")


def test_latest_is_registry_managed(fitted_predictors, registry):
    snap = registry.save(fitted_predictors["meta"])
    with pytest.raises(RegistryError, match="registry-managed"):
        registry.tag(snap.snapshot_id, "latest")


def test_lineage_chain(fitted_predictors, registry):
    meta = fitted_predictors["meta"]
    spec = PredictorSpec.of("meta")
    a = registry.save(meta, spec=spec, note="a")
    b = registry.save(
        meta, spec=spec, parent=a.snapshot_id, note="b",
        store_fingerprint="f" * 64,
    )
    c = registry.save(
        meta, spec=spec, parent=b.snapshot_id, note="c",
        store_fingerprint="e" * 64,
    )
    chain = registry.lineage(c.snapshot_id)
    assert [s.note for s in chain] == ["c", "b", "a"]
    assert chain[0].parent == b.snapshot_id


# ----------------------------------------------------- corruption, prune


def test_corrupt_snapshot_reads_as_absent(fitted_predictors, registry):
    snap = registry.save(fitted_predictors["meta"])
    path = registry._snapshot_path(snap.snapshot_id)
    path.write_text("{ truncated", encoding="utf-8")
    assert registry.list() == []
    with pytest.raises(RegistryError):
        registry.load(snap.snapshot_id)


def test_malformed_manifest_is_an_error(fitted_predictors, registry):
    snap = registry.save(fitted_predictors["meta"])
    path = registry._snapshot_path(snap.snapshot_id)
    doc = json.loads(path.read_text(encoding="utf-8"))
    del doc["manifest"]["seq"]
    path.write_text(json.dumps(doc), encoding="utf-8")
    with pytest.raises(RegistryError, match="malformed snapshot manifest"):
        registry.get(snap.snapshot_id)


def test_prune_keeps_newest_and_ref_targets(fitted_predictors, registry):
    spec = PredictorSpec.of("meta")
    meta = fitted_predictors["meta"]
    snaps = [
        registry.save(meta, spec=spec, store_fingerprint=c * 64)
        for c in "abcd"
    ]
    registry.tag(snaps[0].snapshot_id, "pinned")
    removed = registry.prune(keep=1)
    assert removed == 2  # b and c go; d is newest, a is pinned
    left = {s.snapshot_id for s in registry.list()}
    assert left == {snaps[0].snapshot_id, snaps[-1].snapshot_id}
    # latest still resolves after pruning.
    assert registry.resolve("latest") == snaps[-1].snapshot_id


def test_no_temp_files_left_behind(fitted_predictors, registry):
    registry.save(fitted_predictors["meta"], tags=("prod",))
    stray = [
        p for p in registry.root.rglob("*") if p.name.startswith(".tmp-")
    ]
    assert stray == []
