"""Tests for the serve-daemon and emit CLI subcommands."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.cli.main import main


@pytest.fixture(autouse=True)
def _restore_global_registry():
    """Two concurrent main() calls (daemon thread + emit) race on the
    process-global metrics registry's save/restore pairs; make sure no live
    registry leaks past each test regardless of the exit interleaving."""
    yield
    from repro.obs import set_registry

    set_registry(None)


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_daemon") / "anl.log"
    assert main([
        "generate", "--profile", "ANL", "--scale", "0.02",
        "--seed", "7", "-o", str(path),
    ]) == 0
    return path


@pytest.fixture(scope="module")
def model_path(log_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_daemon_model") / "model.json"
    assert main(["train", str(log_path), "-m", str(path)]) == 0
    return path


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_until_listening(port: int, timeout: float = 30.0) -> None:
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=1):
                return
        except OSError:
            time.sleep(0.05)
    raise TimeoutError(f"daemon never listened on port {port}")


def run_daemon_in_thread(argv: list[str]) -> tuple[threading.Thread, list]:
    """main() in a thread; signal handlers fall back gracefully off-main."""
    result: list = []
    thread = threading.Thread(target=lambda: result.append(main(argv)))
    thread.start()
    return thread, result


def test_daemon_emit_drain_end_to_end(log_path, model_path, tmp_path, capsys):
    port = free_port()
    state = tmp_path / "state.json"
    thread, rc_box = run_daemon_in_thread([
        "serve-daemon", "-m", str(model_path),
        "--port", str(port), "--state", str(state),
    ])
    try:
        wait_until_listening(port)
        rc = main([
            "emit", str(log_path), "--port", str(port),
            "--streams", "3", "--drain",
        ])
        assert rc == 0
    finally:
        thread.join(timeout=60)
    assert not thread.is_alive(), "daemon did not drain after emit --drain"
    assert rc_box == [0]
    out = capsys.readouterr().out
    assert "serve-daemon listening" in out
    assert "emit:" in out and "events/sec" in out
    assert "drained in" in out
    assert "stream stream-0" in out
    # The state file captures the resolved counters for the next life.
    doc = json.loads(state.read_text())
    assert doc["total"]["events"] > 0
    assert set(doc["streams"]) == {"stream-0", "stream-1", "stream-2"}


def test_daemon_restart_accumulates_state(log_path, model_path, tmp_path, capsys):
    state = tmp_path / "state.json"

    def one_life() -> None:
        port = free_port()
        thread, rc_box = run_daemon_in_thread([
            "serve-daemon", "-m", str(model_path),
            "--port", str(port), "--state", str(state),
        ])
        try:
            wait_until_listening(port)
            assert main([
                "emit", str(log_path), "--port", str(port),
                "--streams", "2", "--drain",
            ]) == 0
        finally:
            thread.join(timeout=60)
        assert rc_box == [0]

    one_life()
    first = json.loads(state.read_text())["total"]
    one_life()
    second = json.loads(state.read_text())["total"]
    out = capsys.readouterr().out
    assert "restored state" in out
    # Same log, same model, twice: every lifetime counter exactly doubles.
    for key in ("events", "failures", "warnings", "hits", "false_alarms"):
        assert second[key] == 2 * first[key], key
    assert len(second["lead_seconds"]) == 2 * len(first["lead_seconds"])


def test_serve_daemon_requires_a_model(capsys):
    assert main(["serve-daemon"]) == 2
    assert "provide a model" in capsys.readouterr().err


def test_serve_daemon_lifecycle_needs_registry(model_path, capsys):
    rc = main([
        "serve-daemon", "-m", str(model_path), "--retrain-every", "100",
    ])
    assert rc == 2
    assert "--registry" in capsys.readouterr().err


def test_emit_against_dead_port_fails_cleanly(log_path):
    with pytest.raises(OSError):
        main(["emit", str(log_path), "--port", str(free_port())])


def test_daemon_policy_ledger_survives_restart(log_path, model_path, tmp_path, capsys):
    state = tmp_path / "state.json"

    def one_life() -> None:
        port = free_port()
        thread, rc_box = run_daemon_in_thread([
            "serve-daemon", "-m", str(model_path),
            "--port", str(port), "--state", str(state),
            "--policy", "cost-aware", "--checkpoint-cost", "60",
        ])
        try:
            wait_until_listening(port)
            assert main([
                "emit", str(log_path), "--port", str(port),
                "--streams", "2", "--drain",
            ]) == 0
        finally:
            thread.join(timeout=60)
        assert rc_box == [0]

    one_life()
    first = json.loads(state.read_text())
    assert set(first["ledgers"]) == {"stream-0", "stream-1"}
    for doc in first["ledgers"].values():
        assert doc["policy"] == "cost-aware"
        assert "entries" not in doc    # restart state keeps counters only

    one_life()
    second = json.loads(state.read_text())
    out = capsys.readouterr().out
    assert "actions (cost-aware, seed 0):" in out
    assert "2 stream ledger(s)" in out    # the restore banner
    # Same traffic twice: the lifetime kill counter exactly doubles.
    for sid, doc in second["ledgers"].items():
        assert doc["jobs_hit"] == 2 * first["ledgers"][sid]["jobs_hit"]


def test_daemon_idle_restart_keeps_restored_ledgers(
    log_path, model_path, tmp_path, capsys
):
    """A life that sees no traffic must not erase restored ledger state."""
    state = tmp_path / "state.json"

    def one_life(*, emit: bool) -> None:
        port = free_port()
        thread, rc_box = run_daemon_in_thread([
            "serve-daemon", "-m", str(model_path),
            "--port", str(port), "--state", str(state),
            "--policy", "cost-aware",
        ])
        try:
            wait_until_listening(port)
            if emit:
                assert main([
                    "emit", str(log_path), "--port", str(port),
                    "--streams", "2", "--drain",
                ]) == 0
            else:
                with socket.create_connection(("127.0.0.1", port)) as sock:
                    sock.sendall(b"GET /drain HTTP/1.0\r\n\r\n")
                    sock.recv(4096)
        finally:
            thread.join(timeout=60)
        assert rc_box == [0]

    one_life(emit=True)
    first = json.loads(state.read_text())
    one_life(emit=False)    # drain immediately: no streams this life
    second = json.loads(state.read_text())
    assert "2 stream ledger(s)" in capsys.readouterr().out
    assert second["ledgers"] == first["ledgers"]
    assert second["total"] == first["total"]
