"""Tests for the export CLI subcommand."""

import csv

import pytest

from repro.cli.main import main


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_export") / "log.log"
    assert main([
        "generate", "--profile", "ANL", "--scale", "0.02",
        "--seed", "5", "-o", str(path),
    ]) == 0
    return path


def test_export_writes_three_csvs(log_path, tmp_path, capsys):
    outdir = tmp_path / "csvs"
    rc = main([
        "export", str(log_path), "-o", str(outdir),
        "--folds", "4", "--windows", "15,60",
    ])
    assert rc == 0
    for name in ("figure2_cdf.csv", "table4_categories.csv", "sweep_meta.csv"):
        assert (outdir / name).exists(), name

    sweep = list(csv.DictReader((outdir / "sweep_meta.csv").open()))
    assert [r["window_minutes"] for r in sweep] == ["15", "60"]
    assert all(0.0 <= float(r["precision"]) <= 1.0 for r in sweep)

    cdf = list(csv.DictReader((outdir / "figure2_cdf.csv").open()))
    probs = [float(r["probability"]) for r in cdf]
    assert probs == sorted(probs)  # CDF is monotone

    cats = list(csv.reader((outdir / "table4_categories.csv").open()))
    assert cats[0] == ["category", "log"]
    assert cats[-1][0] == "total"


def test_export_creates_outdir(log_path, tmp_path):
    outdir = tmp_path / "deep" / "nested"
    rc = main([
        "export", str(log_path), "-o", str(outdir),
        "--method", "rule", "--folds", "4", "--windows", "30",
    ])
    assert rc == 0
    assert (outdir / "sweep_rule.csv").exists()
