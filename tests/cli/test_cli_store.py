"""CLI surface for columnar stores: unified --store I/O, store info/convert,
generate --store, and streaming serve-replay."""

import json

import pytest

from repro.cli.main import main
from repro.ras.columnar import is_columnar_dir, open_store


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-store") / "anl-store"
    rc = main([
        "generate", "--profile", "ANL", "--scale", "0.01",
        "--seed", "3", "--store", str(path), "--segments", "2",
    ])
    assert rc == 0
    return path


def test_generate_store_writes_columnar_dir(store_path, capsys):
    assert is_columnar_dir(store_path)
    store = open_store(store_path)
    assert len(store) > 0
    assert store.backend_kind == "columnar"


def test_generate_rejects_both_or_neither_destination(tmp_path, capsys):
    rc = main(["generate", "--scale", "0.01"])
    assert rc == 2
    rc = main([
        "generate", "--scale", "0.01",
        "-o", str(tmp_path / "a.log"), "--store", str(tmp_path / "b"),
    ])
    assert rc == 2
    assert "exactly one destination" in capsys.readouterr().err


def test_store_info_reports_manifest(store_path, capsys):
    rc = main(["store", "info", str(store_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rows:" in out
    assert "time-sorted: True" in out
    assert "segments: 2" in out


def test_store_info_fingerprint(store_path, capsys):
    rc = main(["store", "info", str(store_path), "--fingerprint"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fingerprint: " in out


def test_store_info_rejects_non_store(tmp_path, capsys):
    rc = main(["store", "info", str(tmp_path / "nope")])
    assert rc == 2
    assert "cannot open store" in capsys.readouterr().err


def test_store_convert_round_trip(store_path, tmp_path, capsys):
    log_path = tmp_path / "out.log"
    rc = main(["store", "convert", str(store_path), str(log_path)])
    assert rc == 0
    assert log_path.stat().st_size > 0

    back = tmp_path / "back-store"
    rc = main([
        "store", "convert", str(log_path), str(back), "--chunk", "9999",
    ])
    assert rc == 0
    assert is_columnar_dir(back)
    assert len(open_store(back)) == len(open_store(store_path))

    again = tmp_path / "again.log"
    rc = main(["store", "convert", str(back), str(again)])
    assert rc == 0
    assert again.read_text() == log_path.read_text()


def test_store_convert_compacts_columnar_to_columnar(store_path, tmp_path):
    compacted = tmp_path / "compacted"
    rc = main([
        "store", "convert", str(store_path), str(compacted),
        "--to", "columnar", "--chunk", "100000",
    ])
    assert rc == 0
    assert len(open_store(compacted)) == len(open_store(store_path))


def test_preprocess_accepts_store_directory(store_path, capsys):
    rc = main(["preprocess", str(store_path)])
    assert rc == 0
    assert "unique events" in capsys.readouterr().out


def test_preprocess_explicit_store_flag(store_path, capsys):
    rc = main(["preprocess", "--store", str(store_path)])
    assert rc == 0
    assert "unique events" in capsys.readouterr().out


def test_commands_reject_ambiguous_sources(store_path, tmp_path, capsys):
    rc = main(["preprocess"])
    assert rc == 2
    rc = main(["preprocess", str(store_path), "--store", str(store_path)])
    assert rc == 2
    assert "exactly one event source" in capsys.readouterr().err
    rc = main(["preprocess", "--store", str(tmp_path / "missing")])
    assert rc == 2


def test_evaluate_store_backend_columnar(store_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
    rc = main([
        "evaluate", str(store_path), "--store-backend", "columnar",
        "--folds", "2", "--method", "statistical",
    ])
    assert rc == 0
    assert "precision=" in capsys.readouterr().out


def test_serve_replay_streams_columnar_input(store_path, tmp_path, capsys):
    model = tmp_path / "model.json"
    rc = main(["train", str(store_path), "--model", str(model)])
    assert rc == 0
    capsys.readouterr()
    rc = main([
        "serve-replay", str(store_path), "--model", str(model),
        "--chunk", "128", "--emit-metrics", str(tmp_path / "m.json"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "serve-replay:" in out
    doc = json.loads((tmp_path / "m.json").read_text())
    spans = [s["name"] for s in doc.get("spans", [])]
    assert "serve.replay" in spans
