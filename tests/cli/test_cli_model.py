"""Tests for the model registry CLI and serve-replay's lifecycle mode."""

import pytest

from repro.cli.main import main


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_model") / "anl.log"
    assert main([
        "generate", "--profile", "ANL", "--scale", "0.02",
        "--seed", "7", "-o", str(path),
    ]) == 0
    return path


@pytest.fixture(scope="module")
def model_path(log_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_model_json") / "model.json"
    assert main(["train", str(log_path), "-m", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def registry_dir(model_path, tmp_path_factory):
    reg = tmp_path_factory.mktemp("cli_registry") / "reg"
    assert main([
        "model", "save", str(model_path), "--registry", str(reg),
        "--tag", "prod", "--note", "initial import",
    ]) == 0
    return reg


# ------------------------------------------------------------ model ...


def test_model_save_is_idempotent(model_path, registry_dir, capsys):
    rc = main(["model", "save", str(model_path), "--registry", str(registry_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "registered" in out and "kind=three-phase" in out


def test_model_list_shows_tags_and_note(registry_dir, capsys):
    assert main(["model", "list", "--registry", str(registry_dir)]) == 0
    out = capsys.readouterr().out
    assert "prod" in out and "initial import" in out
    assert "kind=three-phase" in out


def test_model_load_roundtrips(registry_dir, tmp_path, capsys):
    out_path = tmp_path / "roundtrip.json"
    assert main([
        "model", "load", "prod", "--registry", str(registry_dir),
        "-o", str(out_path),
    ]) == 0
    assert out_path.exists()
    assert "written to" in capsys.readouterr().out


def test_model_load_bad_ref_is_clean_error(registry_dir, tmp_path, capsys):
    rc = main([
        "model", "load", "nosuchref", "--registry", str(registry_dir),
        "-o", str(tmp_path / "x.json"),
    ])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "unknown registry ref" in err


def test_model_list_empty_registry(tmp_path, capsys):
    assert main(["model", "list", "--registry", str(tmp_path / "empty")]) == 0
    assert "registry is empty" in capsys.readouterr().out


# ------------------------------------------- serve-replay x registry


def test_serve_replay_from_registry(log_path, registry_dir, capsys):
    rc = main([
        "serve-replay", str(log_path), "--registry", str(registry_dir),
        "--model-ref", "prod", "--shards", "2",
    ])
    assert rc == 0
    assert "events/sec" in capsys.readouterr().out


def test_serve_replay_lifecycle_mode_retrains(log_path, registry_dir, capsys):
    rc = main([
        "serve-replay", str(log_path), "--registry", str(registry_dir),
        "--retrain-every", "150", "--chunk", "100",
        "--drift-window", "100", "--retrain-window", "1000", "--shards", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "lifecycle" in out
    assert "retrain(s)" in out
    assert "swap @event" in out  # at least one swap happened
    assert "serving snapshot:" in out


def test_serve_replay_lifecycle_incremental_matches_plain(
    log_path, model_path, tmp_path, capsys
):
    """--incremental registers the same snapshots and prints the same report."""
    outputs = []
    for name, flag in (("plain", []), ("fast", ["--incremental"])):
        registry = tmp_path / name
        assert main([
            "model", "save", str(model_path), "--registry", str(registry),
        ]) == 0
        capsys.readouterr()
        rc = main([
            "serve-replay", str(log_path), "--registry", str(registry),
            "--retrain-every", "150", "--chunk", "100",
            "--drift-window", "100", "--retrain-window", "1000",
            "--shards", "2", "--jobs", "1", *flag,
        ])
        assert rc == 0
        outputs.append(capsys.readouterr().out)
    # Bit-identical retrains: identical snapshot ids, swaps and stats
    # (wall-clock timing figures are the one legitimate difference).
    # --jobs 1 because the report includes mining.* counters, which worker
    # processes can't record in the parent registry under REPRO_JOBS>1.
    import re

    strip = [re.sub(r"\d+\.\d+ms", "_", o) for o in outputs]
    assert strip[0] == strip[1]
    assert "swap @event" in outputs[0]


# -------------------------------------------------- error paths (no

# tracebacks: operators get one actionable line on stderr and exit code 2).


def test_serve_replay_empty_store_is_clean_error(model_path, tmp_path, capsys):
    empty = tmp_path / "empty.log"
    empty.write_text("")
    rc = main(["serve-replay", str(empty), "-m", str(model_path)])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "no events parsed" in err


def test_serve_replay_unresolvable_ref_is_clean_error(
    log_path, registry_dir, capsys
):
    rc = main([
        "serve-replay", str(log_path), "--registry", str(registry_dir),
        "--model-ref", "does-not-exist",
    ])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "unknown registry ref" in err


def test_serve_replay_requires_some_model_source(log_path, capsys):
    rc = main(["serve-replay", str(log_path)])
    assert rc == 2
    assert "--model FILE or --registry DIR" in capsys.readouterr().err


def test_serve_replay_retrain_flags_require_registry(
    log_path, model_path, capsys
):
    rc = main([
        "serve-replay", str(log_path), "-m", str(model_path),
        "--retrain-every", "100",
    ])
    assert rc == 2
    assert "need --registry" in capsys.readouterr().err


def test_serve_replay_lifecycle_with_policy_prints_ledger(
    log_path, registry_dir, capsys
):
    rc = main([
        "serve-replay", str(log_path), "--registry", str(registry_dir),
        "--retrain-every", "150", "--chunk", "100",
        "--drift-window", "100", "--retrain-window", "1000", "--shards", "2",
        "--policy", "checkpoint", "--checkpoint-cost", "60",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "lifecycle" in out
    assert "actions (checkpoint, seed 0):" in out
    assert "node-seconds:" in out
