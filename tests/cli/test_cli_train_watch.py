"""Tests for the train/watch CLI subcommands (online deployment path)."""

import json

import pytest

from repro.cli.main import main


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_tw") / "sdsc.log"
    assert main([
        "generate", "--profile", "SDSC", "--scale", "0.02",
        "--seed", "3", "-o", str(path),
    ]) == 0
    return path


@pytest.fixture(scope="module")
def model_path(log_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_tw_model") / "model.json"
    assert main([
        "train", str(log_path), "-m", str(path), "--rule-window", "25",
    ]) == 0
    return path


def test_train_writes_valid_model(model_path, capsys):
    doc = json.loads(model_path.read_text())
    assert doc["format_version"] == 1
    assert doc["kind"] == "three-phase"
    assert doc["meta"]["rulebased"]["ruleset"]["rules"]


def test_watch_replays_and_summarizes(log_path, model_path, capsys):
    rc = main(["watch", str(log_path), "-m", str(model_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "WARNING" in out
    assert "watch summary:" in out
    assert "recall" in out


def test_watch_quiet(log_path, model_path, capsys):
    rc = main(["watch", str(log_path), "-m", str(model_path), "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "WARNING" not in out
    assert "watch summary:" in out


def test_watch_model_roundtrip_metrics_sane(log_path, model_path, capsys):
    main(["watch", str(log_path), "-m", str(model_path), "--quiet"])
    out = capsys.readouterr().out
    # "precision 0.XX, recall 0.YY"
    import re

    m = re.search(r"precision (\d\.\d+), recall (\d\.\d+)", out)
    assert m, out
    precision, recall = float(m.group(1)), float(m.group(2))
    # Watching the training log itself: must be clearly better than chance.
    assert precision > 0.5
    assert recall > 0.3
