"""CLI ``--emit-metrics`` and the evaluation report's metrics section."""

import json

import pytest

from repro.cli.main import main


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-metrics") / "anl.log"
    rc = main([
        "generate", "--profile", "ANL", "--scale", "0.02",
        "--seed", "7", "-o", str(path),
    ])
    assert rc == 0
    return path


def test_evaluate_emits_full_metrics_snapshot(log_path, tmp_path, capsys):
    out_path = tmp_path / "metrics.json"
    # --jobs 1 pins the serial backend (overriding any REPRO_JOBS): mining
    # and dispatch counters are recorded during fit/predict, which only
    # reach this registry when folds run in-process.
    rc = main([
        "evaluate", str(log_path), "--method", "meta", "--folds", "3",
        "--jobs", "1", "--emit-metrics", str(out_path),
    ])
    assert rc == 0
    snap = json.loads(out_path.read_text())

    # The acceptance criterion: compression, mining, dispatch and per-fold
    # timing metrics are all present in one export.
    assert 0.0 < snap["gauges"]["preprocess.compression_ratio"] < 1.0
    assert any(k.startswith("mining.") for k in snap["counters"])
    assert "meta.dispatch{method=rule}" in snap["counters"]
    assert "meta.dispatch{method=statistical}" in snap["counters"]
    fold = snap["histograms"]["crossval.fold_seconds"]
    assert fold["count"] == 3
    assert fold["max"] > 0.0
    assert {"p50", "p90", "p99", "mean", "sum", "min"} <= set(fold)

    # Span tree: phase 1 once (shared preprocessing); the evaluation engine
    # groups one "crossval.fold" span per fold under its "engine.run" root.
    def _names(spans):
        for s in spans:
            yield s["name"]
            yield from _names(s.get("children", []))

    all_names = list(_names(snap["spans"]))
    assert all_names.count("phase1") == 1
    assert all_names.count("engine.run") == 1
    assert all_names.count("crossval.fold") == 3

    out = capsys.readouterr().out
    assert "metrics:" in out
    assert "per-fold wall time" in out
    assert f"metrics written to {out_path}" in out


def test_preprocess_emit_metrics_writes_json(log_path, tmp_path, capsys):
    out_path = tmp_path / "pre.json"
    rc = main([
        "preprocess", str(log_path), "--emit-metrics", str(out_path),
    ])
    assert rc == 0
    snap = json.loads(out_path.read_text())
    assert snap["counters"]["preprocess.records_in"] > 0
    assert snap["counters"]["preprocess.events_out"] > 0
    assert [s["name"] for s in snap["spans"]] == ["phase1"]


def test_no_emit_flag_writes_nothing(log_path, tmp_path, capsys):
    rc = main(["preprocess", str(log_path)])
    assert rc == 0
    assert "metrics written" not in capsys.readouterr().out
    assert list(tmp_path.iterdir()) == []
