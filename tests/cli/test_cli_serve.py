"""Tests for the serve-replay CLI subcommand (throughput serving path)."""

import json

import pytest

from repro.cli.main import main


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_serve") / "anl.log"
    assert main([
        "generate", "--profile", "ANL", "--scale", "0.02",
        "--seed", "7", "-o", str(path),
    ]) == 0
    return path


@pytest.fixture(scope="module")
def model_path(log_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_serve_model") / "model.json"
    assert main(["train", str(log_path), "-m", str(path)]) == 0
    return path


def test_serve_replay_prints_throughput_summary(log_path, model_path, capsys):
    rc = main([
        "serve-replay", str(log_path), "-m", str(model_path), "--shards", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "serve-replay:" in out
    assert "events/sec" in out
    assert "shard" in out
    assert "combined:" in out


def test_serve_replay_job_key_and_jobs(log_path, model_path, capsys):
    rc = main([
        "serve-replay", str(log_path), "-m", str(model_path),
        "--shards", "3", "--key", "job", "--jobs", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "key=job" in out


def test_serve_replay_emits_serve_metrics(log_path, model_path, tmp_path, capsys):
    metrics = tmp_path / "metrics.json"
    rc = main([
        "serve-replay", str(log_path), "-m", str(model_path),
        "--emit-metrics", str(metrics),
    ])
    assert rc == 0
    doc = json.loads(metrics.read_text())
    assert "serve.events_per_sec" in doc["gauges"]
    assert "serve.feed_seconds" in doc["histograms"]
    assert any(k.startswith("serve.shard_events") for k in doc["counters"])
    assert any(s["name"] == "serve.replay" for s in doc["spans"])


def test_serve_replay_matches_watch_counts(log_path, model_path, capsys):
    """1-shard serve-replay resolves the same stream watch does."""
    main(["watch", str(log_path), "-m", str(model_path), "--quiet"])
    watch_out = capsys.readouterr().out
    main([
        "serve-replay", str(log_path), "-m", str(model_path), "--shards", "1",
    ])
    serve_out = capsys.readouterr().out
    import re

    watch = re.search(
        r"(\d+) events, (\d+) failures, (\d+) warnings", watch_out
    )
    serve = re.search(
        r"combined: (\d+) warnings / (\d+) failures", serve_out
    )
    assert watch and serve
    assert serve.group(1) == watch.group(3)  # warnings
    assert serve.group(2) == watch.group(2)  # failures


def test_serve_replay_policy_prints_ledger(log_path, model_path, capsys):
    rc = main([
        "serve-replay", str(log_path), "-m", str(model_path),
        "--policy", "cost-aware", "--checkpoint-cost", "60",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "actions (cost-aware, seed 0):" in out
    assert "node-seconds:" in out
    assert "reactive loss (no action):" in out


def test_serve_replay_without_policy_has_no_ledger(log_path, model_path, capsys):
    assert main(["serve-replay", str(log_path), "-m", str(model_path)]) == 0
    assert "actions (" not in capsys.readouterr().out


def test_serve_replay_rejects_unknown_policy(log_path, model_path):
    with pytest.raises(SystemExit):
        main([
            "serve-replay", str(log_path), "-m", str(model_path),
            "--policy", "reboot",
        ])
