"""Tests for the ``bgl-predict`` command-line interface."""

import pytest

from repro.cli.main import main


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "anl.log"
    rc = main([
        "generate", "--profile", "ANL", "--scale", "0.02",
        "--seed", "7", "-o", str(path),
    ])
    assert rc == 0
    return path


def test_generate_writes_log(log_path, capsys):
    assert log_path.exists()
    assert log_path.stat().st_size > 0


def test_generate_loghub_dialect(tmp_path, capsys):
    path = tmp_path / "lh.log"
    rc = main([
        "generate", "--profile", "SDSC", "--scale", "0.01",
        "--seed", "1", "-o", str(path), "--dialect", "loghub",
    ])
    assert rc == 0
    first = path.read_text().splitlines()[0]
    # Loghub lines start with the alert tag, not an epoch.
    assert not first.split(" ")[0].isdigit()


def test_preprocess_reports_compression(log_path, capsys):
    rc = main(["preprocess", str(log_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "unique events" in out
    assert "TOTAL" in out  # Table-4 style block


def test_preprocess_writes_unique_log(log_path, tmp_path, capsys):
    out_path = tmp_path / "unique.log"
    rc = main(["preprocess", str(log_path), "-o", str(out_path)])
    assert rc == 0
    assert out_path.exists()
    raw_lines = len(log_path.read_text().splitlines())
    unique_lines = len(out_path.read_text().splitlines())
    assert unique_lines < raw_lines


def test_mine_prints_rules(log_path, capsys):
    rc = main(["mine", str(log_path), "--top", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "==>" in out
    assert "no-precursor" in out


def test_evaluate_prints_metrics(log_path, capsys):
    rc = main([
        "evaluate", str(log_path), "--method", "statistical", "--folds", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "precision=" in out and "recall=" in out


def test_sweep_prints_table(log_path, capsys):
    rc = main([
        "sweep", str(log_path), "--method", "rule",
        "--windows", "10,30", "--folds", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "window(min)" in out
    assert out.count("\n") >= 3


def test_evaluate_with_jobs_matches_serial(log_path, capsys):
    args = [
        "evaluate", str(log_path), "--method", "rule", "--folds", "4",
    ]
    assert main(args) == 0
    serial_out = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    # Identical headline line (precision/recall to full printed precision).
    assert serial_out.splitlines()[0] == parallel_out.splitlines()[0]


def test_evaluate_cache_dir_reports_hits(log_path, tmp_path, capsys):
    args = [
        "evaluate", str(log_path), "--method", "rule", "--folds", "4",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "artifact cache: 0 hits / 4 misses" in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "artifact cache: 4 hits / 0 misses" in warm
    assert cold.splitlines()[0] == warm.splitlines()[0]


def test_sweep_rule_window_param(log_path, tmp_path, capsys):
    rc = main([
        "sweep", str(log_path), "--method", "rule",
        "--sweep-param", "rule_window",
        "--windows", "10,20", "--folds", "4",
        "--cache-dir", str(tmp_path / "cache"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rule rule_window sweep" in out
    assert "window(min)" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
