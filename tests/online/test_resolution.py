"""Tests for repro.online.resolution (heap-based warning resolution).

The contract is *bit-identical semantics* to the seed's deque implementation
— a faithful copy of which lives here as the reference — plus a complexity
bound: resolution work must stay linear in stream length even with a large
pending backlog (the deque version was quadratic).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np
import pytest

from repro.online.resolution import SessionStats, WarningResolver
from repro.predictors.base import FailureWarning
from repro.util.rng import as_generator


class LegacyDequeResolver:
    """The seed ``OnlineSession`` resolution logic, verbatim (the oracle)."""

    def __init__(self) -> None:
        self.stats = SessionStats()
        self._pending: deque[tuple[FailureWarning, bool]] = deque()

    def _expire(self, now: int) -> None:
        keep: deque[tuple[FailureWarning, bool]] = deque()
        for warning, hit in self._pending:
            if warning.horizon_end < now:
                if hit:
                    self.stats.hits += 1
                else:
                    self.stats.false_alarms += 1
            else:
                keep.append((warning, hit))
        self._pending = keep

    def process(self, now: int, is_fatal: bool, raised: list[FailureWarning]):
        self._expire(now)
        self.stats.events += 1
        if is_fatal:
            self.stats.failures += 1
            covered = False
            earliest_issue: Optional[int] = None
            updated: deque[tuple[FailureWarning, bool]] = deque()
            for warning, hit in self._pending:
                if warning.covers(now):
                    hit = True
                    covered = True
                    if earliest_issue is None or warning.issued_at < earliest_issue:
                        earliest_issue = warning.issued_at
                updated.append((warning, hit))
            self._pending = updated
            if covered:
                self.stats.caught_failures += 1
                assert earliest_issue is not None
                self.stats.lead_seconds.append(now - earliest_issue)
            else:
                self.stats.missed_failures += 1
        for w in raised:
            self.stats.warnings += 1
            self._pending.append((w, False))

    def finish(self) -> SessionStats:
        self._expire(now=2**62)
        return self.stats


def drive(resolver: WarningResolver, stream) -> SessionStats:
    """Run a (time, is_fatal, raised) stream through the heap resolver."""
    for now, is_fatal, raised in stream:
        resolver.advance(now)
        resolver.stats.events += 1
        if is_fatal:
            resolver.observe_failure(now)
        for w in raised:
            resolver.add(w)
    return resolver.finalize()


def drive_legacy(stream) -> SessionStats:
    legacy = LegacyDequeResolver()
    for now, is_fatal, raised in stream:
        legacy.process(now, is_fatal, raised)
    return legacy.finish()


def warn(t: int, start: int, end: int, detail: str = "w") -> FailureWarning:
    return FailureWarning(
        issued_at=t,
        horizon_start=start,
        horizon_end=end,
        confidence=0.5,
        source="test",
        detail=detail,
    )


def random_stream(seed: int, n: int = 400):
    """A seeded stream engineered to hit horizon-boundary ties often.

    Times advance by 0..3 seconds (repeats included); horizons are short,
    so failures frequently land exactly on ``horizon_start`` or
    ``horizon_end`` and expiries frequently tie with arrivals.
    """
    rng = as_generator(seed)
    t = 1000
    stream = []
    for i in range(n):
        t += int(rng.integers(0, 4))
        raised = []
        if rng.random() < 0.45:
            start = t + 1 + int(rng.integers(0, 3))
            end = start + int(rng.integers(0, 8))
            raised.append(warn(t, start, end, f"w{i}"))
        stream.append((t, bool(rng.random() < 0.2), raised))
    return stream


@pytest.mark.parametrize("seed", range(8))
def test_matches_legacy_on_random_streams(seed):
    stream = random_stream(seed)
    assert drive(WarningResolver(), stream) == drive_legacy(stream)


def test_failure_at_horizon_end_tie_is_a_hit():
    """A failure at exactly ``horizon_end`` is covered (closed interval)."""
    stream = [
        (100, False, [warn(100, 101, 105)]),
        (105, True, []),
        (200, False, []),
    ]
    stats = drive(WarningResolver(), stream)
    assert stats == drive_legacy(stream)
    assert stats.hits == 1 and stats.caught_failures == 1
    assert stats.lead_seconds == [5]


def test_failure_at_horizon_start_tie_is_a_hit():
    """A failure at exactly ``horizon_start`` is covered."""
    stream = [
        (100, False, [warn(100, 103, 110)]),
        (103, True, []),
        (200, False, []),
    ]
    stats = drive(WarningResolver(), stream)
    assert stats == drive_legacy(stream)
    assert stats.caught_failures == 1


def test_failure_just_past_horizon_end_is_missed():
    stream = [
        (100, False, [warn(100, 101, 105)]),
        (106, True, []),
        (200, False, []),
    ]
    stats = drive(WarningResolver(), stream)
    assert stats == drive_legacy(stream)
    assert stats.hits == 0 and stats.false_alarms == 1
    assert stats.missed_failures == 1


def test_failure_before_horizon_start_not_covered():
    """A warning whose horizon has not opened yet does not cover a failure."""
    stream = [
        (100, False, [warn(100, 105, 110)]),
        (103, True, []),
        (200, False, []),
    ]
    stats = drive(WarningResolver(), stream)
    assert stats == drive_legacy(stream)
    assert stats.missed_failures == 1
    # ... but the warning itself is then a hit only if a later failure lands.
    assert stats.false_alarms == 1


def test_earliest_covering_warning_anchors_lead_time():
    stream = [
        (100, False, [warn(100, 101, 300, "early")]),
        (150, False, [warn(150, 151, 300, "late")]),
        (200, True, []),
        (400, False, []),
    ]
    stats = drive(WarningResolver(), stream)
    assert stats == drive_legacy(stream)
    assert stats.lead_seconds == [100]  # anchored to the *early* warning
    assert stats.hits == 2


def test_one_failure_marks_all_covering_warnings_hit():
    stream = [
        (100, False, [warn(100, 101, 200, "a"), warn(100, 101, 150, "b")]),
        (120, True, []),
        (300, False, []),
    ]
    stats = drive(WarningResolver(), stream)
    assert stats == drive_legacy(stream)
    assert stats.hits == 2 and stats.false_alarms == 0
    assert stats.caught_failures == 1


def test_finalize_resolves_everything_pending():
    resolver = WarningResolver()
    resolver.advance(100)
    resolver.stats.events += 1
    resolver.add(warn(100, 101, 10**9))
    assert resolver.pending_count == 1
    stats = resolver.finalize()
    assert resolver.pending_count == 0
    assert stats.false_alarms == 1


def test_resolution_work_stays_sublinear_in_backlog():
    """Total resolution ops grow linearly with stream length, not with the
    pending backlog — the regression the heap rewrite exists to prevent.

    Every event adds a long-horizon warning, so the backlog grows without
    bound; per-event work must stay O(log P).  The deque implementation did
    O(P) per event (quadratic total); a reintroduction would blow the
    per-event ops ceiling immediately.
    """

    def total_ops(n: int) -> int:
        resolver = WarningResolver()
        for i in range(n):
            t = 1000 + i
            resolver.advance(t)
            if i % 100 == 99:
                resolver.observe_failure(t)
            resolver.add(warn(t, t + 1, t + 10 * n))
        resolver.finalize()
        return resolver.resolution_ops

    small, large = total_ops(1000), total_ops(4000)
    # Linear scaling: 4x the events => ~4x the ops (quadratic would be ~16x).
    assert large <= 6 * small
    # Absolute ceiling: a handful of heap ops per event, despite the
    # ever-growing backlog.
    assert large <= 20 * 4000


def test_merge_accumulates_all_counters():
    a = SessionStats(events=2, failures=1, warnings=3, hits=1,
                     false_alarms=1, caught_failures=1, missed_failures=0,
                     lead_seconds=[10.0])
    b = SessionStats(events=5, failures=2, warnings=1, hits=0,
                     false_alarms=1, caught_failures=0, missed_failures=2,
                     lead_seconds=[3.0])
    merged = SessionStats().merge(a)
    assert merged.merge(b) is merged
    assert merged.events == 7 and merged.failures == 3
    assert merged.warnings == 4 and merged.hits == 1
    assert merged.false_alarms == 2
    assert merged.caught_failures == 1 and merged.missed_failures == 2
    assert merged.lead_seconds == [10.0, 3.0]
