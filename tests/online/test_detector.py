"""Tests for repro.online (streaming detector and session)."""

import math

import pytest

from repro.meta.stacked import MetaLearner
from repro.online.detector import OnlineDetector, OnlineSession
from repro.ras.fields import Severity
from repro.util.timeutil import MINUTE
from tests.conftest import make_event


@pytest.fixture(scope="module")
def fitted_meta(anl_events):
    cut = int(len(anl_events) * 0.7)
    return (
        MetaLearner(prediction_window=30 * MINUTE, rule_window=15 * MINUTE)
        .fit(anl_events.select(slice(0, cut))),
        anl_events.select(slice(cut, len(anl_events))),
    )


def test_online_equals_offline(fitted_meta):
    """The streaming detector reproduces batch predict() exactly."""
    meta, test = fitted_meta
    offline = meta.predict(test)

    detector = OnlineDetector(meta)
    online = []
    for ev in test:
        online.extend(detector.feed(ev))

    assert len(online) == len(offline)
    for a, b in zip(online, offline):
        assert (a.issued_at, a.horizon_start, a.horizon_end, a.detail) == (
            b.issued_at, b.horizon_start, b.horizon_end, b.detail
        )
        assert a.confidence == pytest.approx(b.confidence)
    assert detector.events_seen == len(test)


def test_online_requires_fitted():
    with pytest.raises(ValueError, match="fitted"):
        OnlineDetector(MetaLearner())


def test_online_rejects_time_travel(fitted_meta):
    meta, test = fitted_meta
    detector = OnlineDetector(meta)
    detector.feed(make_event(time=1_200_000_000))
    with pytest.raises(ValueError, match="time order"):
        detector.feed(make_event(time=1_199_999_000))


def test_online_handles_unseen_label(fitted_meta):
    """A message the training vocabulary never saw must not crash."""
    meta, _ = fitted_meta
    detector = OnlineDetector(meta)
    warnings = detector.feed(
        make_event(time=1_200_000_000, entry="never seen before text 42")
    )
    assert warnings == []


def test_session_counts_consistent(fitted_meta):
    meta, test = fitted_meta
    session = OnlineSession(meta)
    for ev in test:
        session.process(ev)
    stats = session.finish()

    assert stats.events == len(test)
    assert stats.failures == len(test.fatal_events())
    assert stats.caught_failures + stats.missed_failures == stats.failures
    assert stats.hits + stats.false_alarms == stats.warnings
    assert 0.0 <= stats.precision_so_far <= 1.0
    assert 0.0 <= stats.recall_so_far <= 1.0
    assert len(stats.lead_seconds) == stats.caught_failures
    assert all(l >= 0 for l in stats.lead_seconds)


def test_session_matches_batch_metrics(fitted_meta):
    """Causal resolution agrees with the offline matcher."""
    from repro.evaluation.matching import match_warnings

    meta, test = fitted_meta
    session = OnlineSession(meta)
    for ev in test:
        session.process(ev)
    stats = session.finish()

    offline = match_warnings(meta.predict(test), test).metrics
    assert stats.warnings == offline.n_warnings
    assert stats.hits == offline.tp_warnings
    assert stats.caught_failures == offline.covered_fatals


def test_session_hit_and_false_alarm_lifecycle(fitted_meta):
    """Hand-driven scenario: one warning hits, one expires as false alarm."""
    meta, _ = fitted_meta
    session = OnlineSession(meta)
    base = 1_300_000_000

    # Drive a storm: two network fatals -> statistical warning at the 2nd.
    net = "uncorrectable torus error: retransmission limit exceeded"
    session.process(make_event(time=base, severity=Severity.FAILURE, entry=net))
    raised = session.process(
        make_event(time=base + 10 * MINUTE, severity=Severity.FAILURE, entry=net)
    )
    assert len(raised) == 1

    # A third failure inside the horizon: warning resolves as hit.
    session.process(
        make_event(time=base + 25 * MINUTE, severity=Severity.FAILURE, entry=net)
    )
    stats = session.finish()
    assert stats.hits >= 1
    assert stats.caught_failures >= 1
    assert not math.isnan(stats.mean_lead)


def test_empty_session_stats(fitted_meta):
    meta, _ = fitted_meta
    stats = OnlineSession(meta).finish()
    assert stats.precision_so_far == 1.0
    assert stats.recall_so_far == 1.0
    assert math.isnan(stats.mean_lead)
