"""Tests for repro.actions.jobview (trace-backed and stream-inferred views)."""

from repro.actions.jobview import StreamJobView, TraceJobView
from repro.bgl.jobs import Job, JobTrace
from repro.bgl.topology import ANL_SPEC, Machine


def _trace():
    machine = Machine(ANL_SPEC)
    return JobTrace(machine, [
        Job(1, 1000, 5000, (0,)),
        Job(2, 2000, 8000, (1,)),
    ])


def test_trace_view_running_sorted():
    view = TraceJobView(_trace())
    assert [j.job_id for j in view.running(3000)] == [1, 2]
    assert [j.job_id for j in view.running(6000)] == [2]
    assert view.running(500) == []


def test_trace_view_occupant_and_width():
    view = TraceJobView(_trace())
    job = view.occupant(0, 3000)
    assert job is not None and job.job_id == 1
    assert job.start == 1000
    assert job.width_nodes == 512
    assert view.occupant(0, 6000) is None      # job 1 finished
    assert view.occupant(99, 3000) is None     # out of range


def test_trace_view_midplane_index():
    view = TraceJobView(_trace())
    assert view.midplane_index("R00-M0-N03-C07") == 0
    assert view.midplane_index("R00-M1-N00-C00") == 1
    assert view.midplane_index("SYSTEM") == -1
    assert view.n_midplanes() == 2


def test_stream_view_first_seen_and_width():
    view = StreamJobView()
    view.observe(100, "R00-M0-N00-C00", 5)
    view.observe(200, "R00-M1-N00-C00", 5)    # job widens to 2 midplanes
    jobs = view.running(300)
    assert len(jobs) == 1
    assert jobs[0].start == 100
    assert jobs[0].midplanes == (0, 1)
    assert jobs[0].width_nodes == 2 * 512


def test_stream_view_ttl_expiry():
    view = StreamJobView(ttl_seconds=1000.0)
    view.observe(100, "R00-M0-N00-C00", 5)
    assert [j.job_id for j in view.running(1100)] == [5]
    assert view.running(1101) == []            # past last_seen + ttl
    assert view.running(50) == []              # before first_seen


def test_stream_view_occupant_prefers_lowest_job_id():
    view = StreamJobView()
    view.observe(100, "R00-M0-N00-C00", 9)
    view.observe(110, "R00-M0-N01-C00", 4)
    occ = view.occupant(0, 200)
    assert occ is not None and occ.job_id == 4
    assert view.occupant(1, 200) is None


def test_stream_view_forget_frees_occupancy():
    view = StreamJobView()
    view.observe(100, "R00-M0-N00-C00", 5)
    view.forget(5)
    assert view.occupant(0, 200) is None
    assert view.running(200) == []


def test_stream_view_ignores_idle_and_empty_locations():
    view = StreamJobView()
    view.observe(100, "R00-M0-N00-C00", -1)   # NO_JOB
    view.observe(100, "", 7)                  # no location: job still tracked
    assert view.running(200)[0].job_id == 7
    assert view.running(200)[0].midplanes == ()
    assert view.running(200)[0].width_nodes == 512   # floor of one midplane


def test_stream_view_dense_indices_are_first_seen_order():
    view = StreamJobView()
    assert view.midplane_index("R07-M1-N00-C00") == 0
    assert view.midplane_index("R00-M0-N00-C00") == 1
    assert view.midplane_index("R07-M1-N63-C01") == 0   # same midplane
    assert view.n_midplanes() == 2
