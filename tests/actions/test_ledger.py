"""Tests for repro.actions.ledger (settlements, digest, tracker)."""

import pytest

from repro.actions.cost import Action
from repro.actions.ledger import Ledger, LedgerEntry, LedgerTracker


def _action(kind="checkpoint", cost=100.0, **kw):
    base = dict(kind=kind, decided_at=1000, completes_at=1120,
                deadline=4600, job_id=1, width_nodes=512, cost=cost)
    base.update(kw)
    return Action(**base)


def _entry(outcome="hit", saved=500.0, cost=100.0):
    return LedgerEntry(action=_action(cost=cost), outcome=outcome,
                       settled_at=2000, saved=saved, lost=cost)


def test_entry_validation_and_net():
    with pytest.raises(ValueError):
        LedgerEntry(action=_action(), outcome="maybe", settled_at=0)
    assert _entry(saved=500.0, cost=100.0).net == pytest.approx(400.0)


def test_ledger_counters():
    ledger = Ledger()
    a = _action(cost=100.0)
    ledger.record_taken(a)
    ledger.record_settlement(_entry("hit", saved=500.0, cost=100.0))
    ledger.record_kill(900.0)
    assert ledger.taken == {"checkpoint": 1}
    assert ledger.outcomes == {"hit": 1}
    assert ledger.cost_node_seconds == 100.0
    assert ledger.saved_node_seconds == 500.0
    assert ledger.net_node_seconds == pytest.approx(400.0)
    assert ledger.reactive_loss == 900.0
    assert ledger.jobs_hit == 1
    assert ledger.settled == 1


def test_false_alarm_cost_tracked_separately():
    ledger = Ledger()
    ledger.record_settlement(_entry("false_alarm", saved=0.0, cost=100.0))
    assert ledger.false_alarm_cost == 100.0


def test_roundtrip_preserves_digest():
    ledger = Ledger(policy="cost-aware", seed=42)
    ledger.record_taken(_action())
    ledger.record_settlement(_entry())
    ledger.record_kill(900.0)
    restored = Ledger.from_dict(ledger.to_dict())
    assert restored.digest() == ledger.digest()
    assert restored.policy == "cost-aware"
    assert restored.seed == 42


def test_digest_sensitive_to_entries_and_order():
    a, b = Ledger(), Ledger()
    e1 = _entry("hit", saved=500.0)
    e2 = _entry("redundant", saved=0.0)
    a.record_settlement(e1)
    a.record_settlement(e2)
    b.record_settlement(e2)
    b.record_settlement(e1)
    assert a.digest() != b.digest()
    assert a.digest() != Ledger().digest()


def test_state_dict_can_elide_entries():
    ledger = Ledger()
    ledger.record_settlement(_entry())
    doc = ledger.to_dict(include_entries=False)
    assert "entries" not in doc
    assert doc["settled"] == 1
    # Restart state restores counters; the entry list starts fresh.
    assert Ledger.from_dict(doc).settled == 0
    assert Ledger.from_dict(doc).saved_node_seconds == 500.0


def test_merge_sums_counters():
    a, b = Ledger(), Ledger()
    a.record_taken(_action())
    b.record_taken(_action(kind="migrate", completes_at=1180, cost=200.0))
    b.record_settlement(_entry())
    b.record_kill(900.0)
    a.merge(b)
    assert a.taken == {"checkpoint": 1, "migrate": 1}
    assert a.cost_node_seconds == 300.0
    assert a.settled == 1
    assert a.jobs_hit == 1


def test_tracker_windows_recent_settlements():
    tracker = LedgerTracker(window=2)
    ledger = Ledger()
    ledger.record_settlement(_entry("hit", saved=500.0, cost=100.0))
    assert tracker.observe(ledger) == 1
    ledger.record_settlement(_entry("false_alarm", saved=0.0, cost=100.0))
    ledger.record_settlement(_entry("false_alarm", saved=0.0, cost=100.0))
    assert tracker.observe(ledger) == 2
    # Window of 2 keeps only the two false alarms.
    assert tracker.window_net() == pytest.approx(-200.0)
    assert tracker.window_hit_rate() == 0.0
    assert tracker.observe(ledger) == 0      # nothing new


def test_tracker_empty_window():
    tracker = LedgerTracker()
    assert tracker.window_net() == 0.0
    assert tracker.window_hit_rate() is None
    with pytest.raises(ValueError):
        LedgerTracker(window=0)
