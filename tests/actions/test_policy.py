"""Tests for repro.actions.policy (baselines + the cost-aware composite)."""

import pytest

from repro.actions.cost import CostModel
from repro.actions.jobview import StreamJobView
from repro.actions.policy import (
    POLICY_NAMES,
    CheckpointPolicy,
    CostAwarePolicy,
    MigrationPolicy,
    NeverActPolicy,
    PolicyContext,
    QuarantinePolicy,
    build_policy,
)
from repro.predictors.base import FailureWarning
from repro.util.rng import as_generator


def _ctx(view=None, *, now=1000, conf=0.8, hot=-1, hot_share=0.0,
         quarantined=frozenset(), restore_points=None,
         dead_jobs=frozenset()):
    if view is None:
        view = StreamJobView()
    warning = FailureWarning(issued_at=now, horizon_start=now + 60,
                             horizon_end=now + 3600, confidence=conf,
                             source="meta", detail="test")
    return PolicyContext(
        warning=warning, now=now, view=view, cost=CostModel(),
        rng=as_generator(0), hot_midplane=hot, hot_share=hot_share,
        restore_points=restore_points if restore_points is not None else {},
        quarantined=quarantined, dead_jobs=dead_jobs,
    )


def _view_with_job(job_id=1, t=100, location="R00-M0-N00-C00"):
    view = StreamJobView()
    view.observe(t, location, job_id)
    return view


def test_never_act():
    assert NeverActPolicy().decide(_ctx(_view_with_job())) == []


def test_checkpoint_policy_covers_every_running_job():
    view = _view_with_job(1)
    view.observe(200, "R00-M1-N00-C00", 2)
    actions = CheckpointPolicy().decide(_ctx(view))
    assert [a.job_id for a in actions] == [1, 2]
    assert all(a.kind == "checkpoint" for a in actions)


def test_checkpoint_policy_uses_restore_point():
    view = _view_with_job(1)
    fresh = CheckpointPolicy().decide(_ctx(view))[0]
    marked = CheckpointPolicy().decide(
        _ctx(view, restore_points={1: 900})
    )[0]
    # A recent restore point shrinks the work at risk, hence the EV.
    assert marked.expected_value < fresh.expected_value


def test_migration_policy_needs_hot_midplane_with_occupant():
    view = _view_with_job(1)
    view.observe(200, "R00-M1-N00-C00", -1)    # second midplane, no job
    assert MigrationPolicy().decide(_ctx(view, hot=-1, hot_share=1.0)) == []
    assert MigrationPolicy().decide(_ctx(view, hot=3, hot_share=1.0)) == []
    actions = MigrationPolicy().decide(_ctx(view, hot=0, hot_share=1.0))
    assert len(actions) == 1
    assert actions[0].kind == "migrate"
    assert actions[0].job_id == 1
    assert actions[0].midplane == 0


def test_migration_policy_stands_down_without_localized_risk():
    view = _view_with_job(1)
    view.observe(200, "R00-M1-N00-C00", -1)
    # Uniform fatal history (share 0.5 over 2 midplanes): the differential
    # concentration is zero, so moving the job buys nothing.
    assert MigrationPolicy().decide(_ctx(view, hot=0, hot_share=0.5)) == []
    # A single known midplane: nowhere to move to.
    solo = _view_with_job(1)
    assert MigrationPolicy().decide(_ctx(solo, hot=0, hot_share=1.0)) == []


def test_quarantine_policy_one_cordon_at_a_time():
    view = _view_with_job(1)
    assert QuarantinePolicy().decide(_ctx(view, hot=-1)) == []
    assert QuarantinePolicy().decide(
        _ctx(view, hot=0, quarantined=frozenset({0}))
    ) == []
    actions = QuarantinePolicy().decide(_ctx(view, hot=0))
    assert len(actions) == 1
    assert actions[0].kind == "quarantine"
    assert actions[0].midplane == 0


def test_cost_aware_picks_best_action_per_scope():
    view = _view_with_job(1)
    view.observe(200, "R00-M1-N00-C00", -1)    # second midplane, no job
    policy = CostAwarePolicy()
    ctx = _ctx(view, hot=0, hot_share=1.0)
    candidates = policy.candidates(ctx)
    assert len(candidates) == 3       # checkpoint + migrate + quarantine
    decided = policy.decide(ctx)
    assert all(a.expected_value > 0.0 for a in decided)
    job_actions = [a for a in decided if a.kind != "quarantine"]
    assert len(job_actions) == 1      # never two remedies for one job
    best_for_job = max(
        (a for a in candidates if a.kind != "quarantine"),
        key=lambda a: a.expected_value,
    )
    assert job_actions[0].expected_value == best_for_job.expected_value


def test_cost_aware_skips_already_killed_jobs():
    view = _view_with_job(1)
    view.observe(200, "R00-M1-N00-C00", 2)
    decided = CostAwarePolicy().decide(_ctx(view, dead_jobs=frozenset({1})))
    # Job 1's work is already lost; only job 2 is worth protecting.
    assert [(a.kind, a.job_id) for a in decided] == [("checkpoint", 2)]


def test_cost_aware_protects_every_threatened_job():
    view = _view_with_job(1)
    view.observe(200, "R00-M1-N00-C00", 2)
    decided = CostAwarePolicy().decide(_ctx(view))
    # Two running jobs, no hot midplane: one checkpoint each.
    assert [(a.kind, a.job_id) for a in decided] == [
        ("checkpoint", 1), ("checkpoint", 2),
    ]


def test_cost_aware_declines_when_nothing_profitable():
    view = _view_with_job(1)
    # Near-zero confidence: every candidate's EV is negative.
    assert CostAwarePolicy().decide(_ctx(view, hot=0, conf=0.0)) == []
    # No jobs, no hot midplane: nothing to price at all.
    assert CostAwarePolicy().decide(_ctx(StreamJobView())) == []


def test_build_policy():
    for name in POLICY_NAMES:
        assert build_policy(name).name == name
    with pytest.raises(ValueError, match="unknown policy"):
        build_policy("reboot")
