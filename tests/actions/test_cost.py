"""Tests for repro.actions.cost (price book + settlement arithmetic)."""

import math

import pytest

from repro.actions.cost import NODES_PER_MIDPLANE, Action, CostModel
from repro.predictors.base import FailureWarning


def _warning(issued=1000, start=1060, end=4600, conf=0.8):
    return FailureWarning(issued_at=issued, horizon_start=start,
                          horizon_end=end, confidence=conf,
                          source="meta", detail="test")


def test_action_validation():
    with pytest.raises(ValueError):
        Action(kind="reboot", decided_at=0, completes_at=0, deadline=10)
    with pytest.raises(ValueError):
        Action(kind="checkpoint", decided_at=10, completes_at=5, deadline=10)


def test_cost_model_validation():
    with pytest.raises(ValueError):
        CostModel(checkpoint_cost=0)
    with pytest.raises(ValueError):
        CostModel(quarantine_drain=1.5)
    with pytest.raises(ValueError):
        CostModel(quarantine_occupancy=-0.1)


def test_coverage_geometry():
    cm = CostModel(hazard_decay_fraction=0.03, front_load_weight=0.9)
    w = _warning(start=1000, end=2000)
    assert cm.coverage(900, w) == 1.0       # ready before the horizon
    assert cm.coverage(1000, w) == 1.0      # ready exactly at horizon start
    # Halfway through: 0.9 * exp(-500/30) + 0.1 * 0.5 — the front-loaded
    # survival term has all but vanished, the uniform tail remains.
    halfway = 0.9 * math.exp(-500.0 / 30.0) + 0.1 * 0.5
    assert cm.coverage(1500, w) == pytest.approx(halfway)
    assert cm.coverage(2001, w) == 0.0      # too late
    zero = _warning(start=1000, end=1000)
    assert cm.coverage(1000, zero) == 1.0   # ready for the whole instant
    assert cm.coverage(1001, zero) == 0.0   # degenerate horizon, too late


def test_coverage_is_monotone_in_completion_time():
    cm = CostModel()
    w = _warning(start=1000, end=2000)
    values = [cm.coverage(t, w) for t in range(900, 2100, 50)]
    assert values == sorted(values, reverse=True)
    assert all(0.0 <= v <= 1.0 for v in values)


def test_expected_kill_time_front_loads_and_caps():
    cm = CostModel(hazard_decay_fraction=0.03)
    w = _warning(start=1000, end=2000)    # hazard scale = 30 s
    # Ready early: the kill is expected one hazard scale into the horizon.
    assert cm.expected_kill_time(500, w) == pytest.approx(1030.0)
    # Ready mid-horizon: one hazard scale past the completion time.
    assert cm.expected_kill_time(1500, w) == pytest.approx(1530.0)
    # Never past the horizon end.
    assert cm.expected_kill_time(1990, w) == pytest.approx(2000.0)


def test_capped_work():
    cm = CostModel(work_cap_seconds=100.0)
    assert cm.capped_work(-5.0) == 0.0
    assert cm.capped_work(42.0) == 42.0
    assert cm.capped_work(1e9) == 100.0


def test_price_checkpoint_hand_computed():
    cm = CostModel(checkpoint_cost=120.0)
    w = _warning(issued=1000, start=1000, end=2000, conf=0.5)
    a = cm.price_checkpoint(w, job_id=7, width_nodes=512, restore_point=100.0)
    assert a.kind == "checkpoint"
    assert a.completes_at == 1120
    assert a.deadline == 2000
    assert a.cost == 120.0 * 512
    # EV = conf * coverage(1120) * attribution(1.0) * (1120-100) * 512 - cost
    cov = cm.coverage(1120, w)
    assert a.expected_value == pytest.approx(0.5 * cov * 1020 * 512 - a.cost)


def test_price_checkpoint_attribution_scales_the_upside():
    cm = CostModel(checkpoint_cost=120.0)
    w = _warning(issued=1000, start=1000, end=2000, conf=0.5)
    whole = cm.price_checkpoint(
        w, job_id=7, width_nodes=512, restore_point=100.0
    )
    half = cm.price_checkpoint(
        w, job_id=7, width_nodes=512, restore_point=100.0, attribution=0.5
    )
    # Attribution scales only the expected saving, never the paid cost.
    assert half.cost == whole.cost
    assert half.expected_value == pytest.approx(
        (whole.expected_value + whole.cost) / 2.0 - whole.cost
    )


def test_price_checkpoint_too_late_is_negative():
    cm = CostModel(checkpoint_cost=120.0)
    # Horizon closes before the checkpoint can complete: pure waste.
    w = _warning(issued=1000, start=1001, end=1100)
    a = cm.price_checkpoint(w, job_id=7, width_nodes=512, restore_point=0.0)
    assert a.expected_value == pytest.approx(-a.cost)


def test_price_migration_hand_computed():
    cm = CostModel(migration_cost=180.0, restart_cost=300.0,
                   hazard_decay_fraction=0.03)
    w = _warning(issued=1000, start=1000, end=3000, conf=1.0)
    a = cm.price_migration(w, job_id=3, midplane=2, width_nodes=512,
                           job_start=0.0, locality=0.5)
    assert a.kind == "migrate"
    assert a.midplane == 2
    assert a.completes_at == 1180
    # Hazard scale = 0.03 * 2000 = 60 s: the kill, conditioned on landing
    # after the migration completes, is expected one scale later.
    t_hat = 1180 + 60.0
    cov = cm.coverage(1180, w)
    expect = 1.0 * cov * 0.5 * (t_hat + 300.0) * 512 - 180.0 * 512
    assert a.expected_value == pytest.approx(expect)


def test_price_quarantine_hand_computed():
    cm = CostModel(quarantine_drain=0.1, quarantine_occupancy=0.5,
                   restart_cost=300.0, hazard_decay_fraction=0.03)
    w = _warning(issued=1000, start=1200, end=2000, conf=0.8)
    a = cm.price_quarantine(w, midplane=4)
    assert a.kind == "quarantine"
    assert a.completes_at == 1000      # cordon effective immediately
    assert a.width_nodes == NODES_PER_MIDPLANE
    assert a.cost == pytest.approx(0.1 * 512 * 1000)
    # A diverted job has only run since the cordon went up: the claimable
    # work is the hazard scale (0.03 * 800 = 24 s) plus the dodged restart.
    expect = 0.8 * 1.0 * 0.5 * (24.0 + 300.0) * 512 - a.cost
    assert a.expected_value == pytest.approx(expect)


def test_price_quarantine_locality_discounts_the_upside():
    cm = CostModel(quarantine_drain=0.1, quarantine_occupancy=0.5)
    w = _warning(issued=1000, start=1200, end=2000, conf=0.8)
    blanket = cm.price_quarantine(w, midplane=4)
    local = cm.price_quarantine(w, midplane=4, locality=0.25)
    assert local.cost == blanket.cost
    assert local.expected_value == pytest.approx(
        (blanket.expected_value + blanket.cost) * 0.25 - blanket.cost
    )


def test_settlement_helpers():
    cm = CostModel(restart_cost=300.0, work_cap_seconds=1000.0)
    assert cm.checkpoint_saving(600.0, 100.0, 2) == pytest.approx(500.0 * 2)
    assert cm.checkpoint_saving(50.0, 100.0, 2) == 0.0      # pre-start clamp
    assert cm.rescue_saving(600.0, 100.0, 2) == pytest.approx((500.0 + 300.0) * 2)
    assert cm.reactive_loss(5000.0, 100.0, 2) == pytest.approx(1000.0 * 2)  # cap
