"""Tests for repro.actions.engine (decide → schedule → settle fold)."""

from typing import List

import pytest

from repro.actions.cost import Action, CostModel
from repro.actions.engine import ActionEngine
from repro.actions.policy import CheckpointPolicy, NeverActPolicy
from repro.predictors.base import FailureWarning
from repro.ras.fields import Severity
from repro.ras.store import EventStore
from tests.conftest import make_event

WIDTH = 512  # one midplane


class _FixedPolicy:
    """Emits a canned action list on the first decision (test scaffolding)."""

    name = "fixed"

    def __init__(self, actions: List[Action]) -> None:
        self._actions = list(actions)

    def decide(self, ctx) -> List[Action]:
        out, self._actions = self._actions, []
        return out


def _info(time, job_id=1, location="R00-M0-N00-C00"):
    return make_event(time=time, location=location, job_id=job_id,
                      severity=Severity.INFO)


def _fatal(time, job_id=1, location="R00-M0-N05-C00"):
    return make_event(time=time, location=location, job_id=job_id,
                      severity=Severity.FATAL,
                      entry="kernel panic: unrecoverable condition detected")


def _warning(issued=1000, end=4600, conf=0.9):
    return FailureWarning(issued_at=issued, horizon_start=issued + 60,
                          horizon_end=end, confidence=conf,
                          source="meta", detail="test")


def _store(events):
    return EventStore.from_events(events)


def test_checkpoint_hit_hand_computed():
    engine = ActionEngine(CheckpointPolicy(), CostModel(checkpoint_cost=120.0))
    store = _store([_info(100), _info(2000), _fatal(3000)])
    engine.observe_store(store, [_warning(1000)])
    ledger = engine.finalize()
    assert ledger.taken == {"checkpoint": 1}
    assert ledger.outcomes == {"hit": 1}
    # Checkpoint at 1000 completes at 1120; job first seen at 100.
    assert ledger.saved_node_seconds == pytest.approx((1120 - 100) * WIDTH)
    assert ledger.cost_node_seconds == pytest.approx(120 * WIDTH)
    assert ledger.net_node_seconds == pytest.approx(460_800)
    assert ledger.reactive_loss == pytest.approx((3000 - 100) * WIDTH)
    assert ledger.jobs_hit == 1


def test_unmatched_warning_expires_as_false_alarm():
    engine = ActionEngine(CheckpointPolicy(), CostModel(checkpoint_cost=120.0))
    store = _store([_info(100), _info(2000), _info(5000)])
    engine.observe_store(store, [_warning(1000, end=4600)])
    ledger = engine.finalize()
    assert ledger.outcomes == {"false_alarm": 1}
    assert ledger.false_alarm_cost == pytest.approx(120 * WIDTH)
    assert ledger.net_node_seconds == pytest.approx(-120 * WIDTH)
    assert ledger.entries[0].settled_at == 4600   # the deadline, not t=5000


def test_finalize_expires_still_open_actions():
    engine = ActionEngine(CheckpointPolicy(), CostModel())
    engine.observe_store(_store([_info(100), _info(2000)]), [_warning(1000)])
    ledger = engine.finalize()
    assert ledger.outcomes == {"false_alarm": 1}


def test_never_act_policy_only_tracks_reactive_loss():
    engine = ActionEngine(NeverActPolicy(), CostModel())
    engine.observe_store(
        _store([_info(100), _fatal(3000)]), [_warning(1000)]
    )
    ledger = engine.finalize()
    assert ledger.taken == {}
    assert ledger.settled == 0
    assert ledger.net_node_seconds == 0.0
    assert ledger.reactive_loss == pytest.approx((3000 - 100) * WIDTH)


def test_job_killed_once():
    engine = ActionEngine(NeverActPolicy(), CostModel())
    engine.observe_store(
        _store([_info(100), _fatal(3000), _fatal(3500)]), []
    )
    assert engine.finalize().jobs_hit == 1


def test_completed_migration_outranks_checkpoint():
    ckpt = Action(kind="checkpoint", decided_at=1000, completes_at=1120,
                  deadline=4600, job_id=1, width_nodes=WIDTH,
                  cost=120.0 * WIDTH)
    mig = Action(kind="migrate", decided_at=1000, completes_at=1180,
                 deadline=4600, job_id=1, midplane=0, width_nodes=WIDTH,
                 cost=180.0 * WIDTH)
    engine = ActionEngine(_FixedPolicy([ckpt, mig]),
                          CostModel(restart_cost=300.0))
    engine.observe_store(
        _store([_info(100), _info(2000), _fatal(3000)]), [_warning(1000)]
    )
    ledger = engine.finalize()
    assert ledger.outcomes == {"hit": 1, "redundant": 1}
    hit = next(e for e in ledger.entries if e.outcome == "hit")
    assert hit.action.kind == "migrate"
    # Migration dodges the kill: all work since start plus the restart.
    assert hit.saved == pytest.approx((3000 - 100 + 300) * WIDTH)
    redundant = next(e for e in ledger.entries if e.outcome == "redundant")
    assert redundant.action.kind == "checkpoint"
    assert redundant.saved == 0.0


def test_incomplete_action_settles_late():
    ckpt = Action(kind="checkpoint", decided_at=2900, completes_at=3020,
                  deadline=6500, job_id=1, width_nodes=WIDTH,
                  cost=120.0 * WIDTH)
    engine = ActionEngine(_FixedPolicy([ckpt]), CostModel())
    engine.observe_store(
        _store([_info(100), _info(2950), _fatal(3000)]), [_warning(2900)]
    )
    ledger = engine.finalize()
    assert ledger.outcomes == {"late": 1}
    assert ledger.saved_node_seconds == 0.0


def test_cordon_credited_only_for_diverted_jobs():
    cordon = Action(kind="quarantine", decided_at=1000, completes_at=1000,
                    deadline=4600, midplane=0, width_nodes=WIDTH,
                    cost=1000.0)
    # Job 2 starts AFTER the cordon was placed: a diverted job, credited.
    engine = ActionEngine(_FixedPolicy([cordon]), CostModel(restart_cost=300.0))
    engine.observe_store(
        _store([_info(2000, job_id=2), _fatal(3000, job_id=2)]),
        [_warning(1000)],
    )
    ledger = engine.finalize()
    assert ledger.outcomes == {"hit": 1}
    assert ledger.entries[0].saved == pytest.approx((3000 - 2000 + 300) * WIDTH)

    # Job 1 was already running when the cordon went up: no credit.
    cordon2 = Action(kind="quarantine", decided_at=1000, completes_at=1000,
                     deadline=4600, midplane=0, width_nodes=WIDTH,
                     cost=1000.0)
    engine2 = ActionEngine(_FixedPolicy([cordon2]), CostModel())
    engine2.observe_store(
        _store([_info(100), _info(2000), _fatal(3000)]), [_warning(1000)]
    )
    assert engine2.finalize().outcomes == {"redundant": 1}


def test_chunked_feed_matches_one_shot_digest():
    events = [_info(100), _info(2000), _info(2500), _fatal(3000),
              _info(4000), _info(7000)]
    warnings = [_warning(1000), _warning(2400, end=5000, conf=0.7)]

    one_shot = ActionEngine(CheckpointPolicy(), CostModel(), seed=3)
    one_shot.observe_store(_store(events), list(warnings))
    expected = one_shot.finalize().digest()

    for split in range(1, len(events)):
        engine = ActionEngine(CheckpointPolicy(), CostModel(), seed=3)
        engine.observe_store(_store(events[:split]), list(warnings))
        engine.observe_store(_store(events[split:]), [])
        assert engine.finalize().digest() == expected, f"split at {split}"


def test_ledger_stamped_with_policy_and_seed():
    engine = ActionEngine(CheckpointPolicy(), CostModel(), seed=99)
    ledger = engine.finalize()
    assert ledger.policy == "checkpoint"
    assert ledger.seed == 99


def test_hot_midplane_tracking():
    engine = ActionEngine(NeverActPolicy(), CostModel(),
                          hot_window_seconds=1000.0)
    engine.observe_store(
        _store([
            _fatal(100, job_id=-1, location="R00-M0-N00-C00"),
            _fatal(200, job_id=-1, location="R00-M1-N00-C00"),
            _fatal(300, job_id=-1, location="R00-M1-N03-C00"),
        ]),
        [],
    )
    hot, share = engine._hot_midplane(400)
    assert hot == 1                            # two fatals beat one
    assert share == pytest.approx(2.0 / 3.0)
    assert engine._hot_midplane(5000) == (-1, 0.0)   # history aged out
