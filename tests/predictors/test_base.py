"""Tests for repro.predictors.base."""

import pytest

from repro.predictors.base import (
    FailureWarning,
    NotFittedError,
    Predictor,
    dedup_warnings,
    merge_warning_streams,
)
from repro.ras.store import EventStore


def w(issued, start=None, end=None, conf=0.5, source="s", detail="d"):
    start = issued + 1 if start is None else start
    end = start + 100 if end is None else end
    return FailureWarning(
        issued_at=issued, horizon_start=start, horizon_end=end,
        confidence=conf, source=source, detail=detail,
    )


def test_warning_validation():
    with pytest.raises(ValueError):
        w(100, start=50)  # retroactive horizon
    with pytest.raises(ValueError):
        w(100, start=101, end=100)
    with pytest.raises(ValueError):
        w(100, conf=1.5)


def test_warning_covers():
    warning = w(0, start=10, end=20)
    assert warning.covers(10) and warning.covers(20)
    assert not warning.covers(9) and not warning.covers(21)
    assert warning.horizon_width == 10


def test_dedup_suppresses_active_duplicates():
    a = w(100, detail="r1")
    b = w(150, detail="r1")  # still inside a's horizon
    c = w(300, detail="r1")  # after a's horizon (ends at 201)
    kept = dedup_warnings([a, b, c])
    assert kept == [a, c]


def test_dedup_distinguishes_details():
    a = w(100, detail="r1")
    b = w(100, detail="r2")
    assert len(dedup_warnings([a, b])) == 2


def test_dedup_distinguishes_sources():
    a = w(100, source="rule")
    b = w(100, source="statistical")
    assert len(dedup_warnings([a, b])) == 2


def test_merge_warning_streams_ordered():
    s1 = [w(100), w(300)]
    s2 = [w(200)]
    merged = merge_warning_streams(s1, s2)
    assert [x.issued_at for x in merged] == [100, 200, 300]


def test_unfitted_predictor_raises():
    class P(Predictor):
        name = "p"

        def fit(self, events):
            self._fitted = True
            return self

        def predict(self, events):
            self._check_fitted()
            return []

    p = P()
    with pytest.raises(NotFittedError):
        p.predict(EventStore.empty())
    p.fit(EventStore.empty())
    assert p.predict(EventStore.empty()) == []
    assert p.is_fitted
