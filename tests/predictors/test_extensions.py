"""Tests for repro.predictors.extensions."""

import pytest

from repro.predictors.extensions import (
    AlwaysWarnPredictor,
    NeverWarnPredictor,
    PeriodicityPredictor,
)
from repro.evaluation.matching import match_warnings
from repro.ras.fields import Facility, Severity
from repro.ras.store import EventStore
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import HOUR
from tests.conftest import make_event


def _labeled(events):
    return TaxonomyClassifier().classify_store(EventStore.from_events(events))


@pytest.fixture
def periodic_store():
    """Network failures exactly every 6 hours."""
    return _labeled([
        make_event(time=10_000 + k * 6 * HOUR, severity=Severity.FAILURE,
                   facility=Facility.KERNEL,
                   entry="uncorrectable torus error: retransmission limit exceeded")
        for k in range(40)
    ])


def test_periodicity_learns_period(periodic_store):
    from repro.taxonomy.categories import MainCategory

    p = PeriodicityPredictor().fit(periodic_store)
    assert MainCategory.NETWORK in p.periods
    median, conf = p.periods[MainCategory.NETWORK]
    assert median == pytest.approx(6 * HOUR)
    assert conf == pytest.approx(1.0)


def test_periodicity_predicts_next_failure(periodic_store):
    p = PeriodicityPredictor().fit(periodic_store)
    warnings = p.predict(periodic_store)
    assert warnings
    match = match_warnings(warnings, periodic_store)
    # All but the last failure are followed on schedule.
    assert match.metrics.recall > 0.9
    assert match.metrics.precision > 0.9


def test_periodicity_ignores_dispersed_categories(anl_events):
    """Storm-driven categories are not quasi-periodic: nothing learned or
    few periods with honest (low) confidence."""
    p = PeriodicityPredictor(dispersion=0.2).fit(anl_events)
    from repro.taxonomy.categories import MainCategory

    assert MainCategory.IOSTREAM not in p.periods


def test_periodicity_min_samples():
    store = _labeled([
        make_event(time=1000, severity=Severity.FAILURE,
                   entry="kernel panic: unrecoverable condition detected"),
    ])
    p = PeriodicityPredictor(min_samples=10).fit(store)
    assert p.periods == {}
    assert p.predict(store) == []


def test_periodicity_validation():
    with pytest.raises(ValueError):
        PeriodicityPredictor(min_samples=1)
    with pytest.raises(ValueError):
        PeriodicityPredictor(half_band=0)


def test_always_warn_baseline(periodic_store):
    p = AlwaysWarnPredictor(window=HOUR).fit(periodic_store)
    warnings = p.predict(periodic_store)
    assert len(warnings) == len(periodic_store)
    # Failures every 6h, horizon 1h: precision is the base rate (~0),
    # recall stays 0 because no fatal falls within 1h of a previous event.
    match = match_warnings(warnings, periodic_store)
    assert match.metrics.precision < 0.1


def test_never_warn_baseline(periodic_store):
    p = NeverWarnPredictor().fit(periodic_store)
    match = match_warnings(p.predict(periodic_store), periodic_store)
    assert match.metrics.recall == 0.0
    assert match.metrics.n_warnings == 0
