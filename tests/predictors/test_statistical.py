"""Tests for repro.predictors.statistical."""

import numpy as np
import pytest

from repro.predictors.statistical import StatisticalPredictor, failure_gap_cdf
from repro.ras.fields import Facility, Severity
from repro.ras.store import EventStore
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import HOUR, MINUTE
from tests.conftest import make_event


def _fatal(time, entry="uncorrectable torus error: retransmission limit exceeded"):
    return make_event(
        time=time, severity=Severity.FAILURE, facility=Facility.KERNEL,
        entry=entry,
    )


def _labeled(events):
    return TaxonomyClassifier().classify_store(EventStore.from_events(events))


@pytest.fixture
def bursty_store():
    """Network fatals in pairs 10 minutes apart, pairs 1 day apart."""
    events = []
    for day in range(20):
        t = 100_000 + day * 86_400
        events.append(_fatal(t))
        events.append(_fatal(t + 10 * MINUTE))
    return _labeled(events)


def test_fit_learns_follow_probability(bursty_store):
    sp = StatisticalPredictor(window=HOUR, lead=5 * MINUTE).fit(bursty_store)
    # Every first-of-pair is followed within the band; seconds are not.
    assert sp.follow_probability[MainCategory.NETWORK] == pytest.approx(0.5)
    assert MainCategory.NETWORK in sp.trigger_categories


def test_trigger_threshold(bursty_store):
    sp = StatisticalPredictor(trigger_threshold=0.9).fit(bursty_store)
    assert sp.trigger_categories == ()


def test_forced_categories(bursty_store):
    sp = StatisticalPredictor(
        categories=[MainCategory.MEMORY], trigger_threshold=0.9
    ).fit(bursty_store)
    assert sp.trigger_categories == (MainCategory.MEMORY,)


def test_predict_emits_one_warning_per_trigger(bursty_store):
    sp = StatisticalPredictor(window=HOUR, lead=0.0).fit(bursty_store)
    warnings = sp.predict(bursty_store)
    assert len(warnings) == len(bursty_store)  # every fatal is network
    w = warnings[0]
    assert w.source == "statistical"
    assert w.detail == "network"
    assert w.horizon_start == w.issued_at + 1  # lead 0 still excludes self
    assert w.horizon_end == w.issued_at + HOUR


def test_predict_respects_lead(bursty_store):
    sp = StatisticalPredictor(window=HOUR, lead=5 * MINUTE).fit(bursty_store)
    w = sp.predict(bursty_store)[0]
    assert w.horizon_start == w.issued_at + 5 * MINUTE


def test_predict_empty_when_no_triggers(bursty_store):
    sp = StatisticalPredictor(trigger_threshold=0.9).fit(bursty_store)
    assert sp.predict(bursty_store) == []


def test_deduplicate_option(bursty_store):
    sp = StatisticalPredictor(
        window=HOUR, lead=0.0, deduplicate=True
    ).fit(bursty_store)
    warnings = sp.predict(bursty_store)
    # Second of each pair falls inside the first's horizon -> suppressed.
    assert len(warnings) == 20


def test_candidate_confidence(bursty_store):
    sp = StatisticalPredictor(window=HOUR, lead=5 * MINUTE).fit(bursty_store)
    assert sp.candidate_confidence(MainCategory.NETWORK) == pytest.approx(0.5)
    assert sp.candidate_confidence(MainCategory.MEMORY) is None


def test_fit_empty_store():
    sp = StatisticalPredictor().fit(
        TaxonomyClassifier().classify_store(EventStore.empty())
    )
    assert sp.trigger_categories == ()
    assert sp.predict(
        TaxonomyClassifier().classify_store(EventStore.empty())
    ) == []


def test_parameter_validation():
    with pytest.raises(ValueError):
        StatisticalPredictor(window=0)
    with pytest.raises(ValueError):
        StatisticalPredictor(window=100, lead=100)
    with pytest.raises(ValueError):
        StatisticalPredictor(trigger_threshold=2.0)


def test_not_fitted(bursty_store):
    with pytest.raises(Exception):
        StatisticalPredictor().predict(bursty_store)


def test_anl_triggers_are_network_and_iostream(anl_events):
    """On the ANL profile the selected triggers match the paper's analysis."""
    sp = StatisticalPredictor(window=HOUR, lead=5 * MINUTE).fit(anl_events)
    assert MainCategory.NETWORK in sp.trigger_categories
    assert MainCategory.IOSTREAM in sp.trigger_categories


# ---------------------------------------------------------------------- #
# failure_gap_cdf (Figure 2)
# ---------------------------------------------------------------------- #


def test_cdf_monotone_nondecreasing(anl_events):
    grid, cdf = failure_gap_cdf(anl_events)
    assert np.all(np.diff(cdf) >= 0)
    assert 0.0 <= cdf[0] <= cdf[-1] <= 1.0


def test_cdf_known_gaps(bursty_store):
    grid = np.array([5 * MINUTE, 15 * MINUTE, 2 * 86_400], dtype=float)
    _, cdf = failure_gap_cdf(bursty_store, grid)
    # Half the gaps are 10 min, half ~1 day.
    assert cdf[0] == pytest.approx(0.0)
    assert cdf[1] == pytest.approx(20 / 39, abs=0.01)
    assert cdf[2] == pytest.approx(1.0)


def test_cdf_too_few_fatals():
    store = _labeled([_fatal(100)])
    grid, cdf = failure_gap_cdf(store)
    assert np.all(cdf == 0)
