"""Tests for repro.predictors.bayes."""

import pytest

from repro.evaluation.matching import match_warnings
from repro.predictors.bayes import BayesPredictor
from repro.ras.fields import Severity
from repro.ras.store import EventStore
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import MINUTE
from tests.conftest import make_event


def _labeled(events):
    return TaxonomyClassifier().classify_store(EventStore.from_events(events))


def _pattern(t0, with_head=True):
    """watchdog+assert in one window, kernel panic in the next."""
    events = [
        make_event(time=t0, severity=Severity.WARNING,
                   entry="watchdog timer approaching expiration"),
        make_event(time=t0 + 120, severity=Severity.ERROR,
                   entry="kernel assertion failed: internal consistency check"),
    ]
    if with_head:
        events.append(
            make_event(time=t0 + 20 * MINUTE, severity=Severity.FAILURE,
                       entry="kernel panic: unrecoverable condition detected")
        )
    return events


def _noise(t0):
    return [make_event(time=t0, severity=Severity.INFO,
                       entry="timer interrupt rollover serviced")]


@pytest.fixture
def train_store():
    events = []
    t = 100_000
    for k in range(40):
        events.extend(_pattern(t, with_head=True))
        t += 3 * 3600
        events.extend(_noise(t))
        t += 3 * 3600
    return _labeled(events)


def test_fit_and_posterior_ordering(train_store):
    bp = BayesPredictor(window=15 * MINUTE).fit(train_store)
    # Identify item ids from the label table.
    idx = {n: i for i, n in enumerate(train_store.subcat_table)}
    signal = {idx["watchdogTimerWarning"], idx["kernelAssertError"]}
    noise = {idx["timerInterruptInfo"]}
    assert bp.posterior(signal) > bp.posterior(noise)
    assert 0.0 <= bp.posterior(set()) <= 1.0


def test_predict_fires_on_signal(train_store):
    bp = BayesPredictor(window=15 * MINUTE, threshold=0.5).fit(train_store)
    # Test instance with the failure inside the warning horizon (the
    # training patterns place it one window later; the classifier does not
    # depend on the exact lag).
    events = _pattern(9_000_000, with_head=False) + [
        make_event(time=9_000_000 + 10 * MINUTE, severity=Severity.FAILURE,
                   entry="kernel panic: unrecoverable condition detected")
    ]
    test = _labeled(events)
    warnings = bp.predict(test)
    assert warnings, "the learned pattern must raise a warning"
    assert warnings[0].confidence > 0.9
    match = match_warnings(warnings, test)
    assert match.metrics.recall > 0


def test_predict_silent_on_noise(train_store):
    bp = BayesPredictor(window=15 * MINUTE, threshold=0.5).fit(train_store)
    test = _labeled(_noise(9_000_000) + _noise(9_000_600))
    assert bp.predict(test) == []


def test_dedup_within_horizon(train_store):
    bp = BayesPredictor(window=15 * MINUTE, threshold=0.5).fit(train_store)
    events = _pattern(9_000_000, with_head=False)
    events += _pattern(9_000_000 + 5 * MINUTE, with_head=False)
    warnings = bp.predict(_labeled(events))
    assert len(warnings) <= 1


def test_threshold_monotone(train_store):
    test_events = []
    t = 9_000_000
    for k in range(10):
        test_events.extend(_pattern(t))
        t += 2 * 3600
    test = _labeled(test_events)
    lo = BayesPredictor(window=15 * MINUTE, threshold=0.2).fit(train_store)
    hi = BayesPredictor(window=15 * MINUTE, threshold=0.9).fit(train_store)
    assert len(hi.predict(test)) <= len(lo.predict(test))


def test_empty_store():
    store = _labeled([])
    bp = BayesPredictor().fit(store)
    assert bp.predict(store) == []
    assert bp.posterior(set()) == pytest.approx(0.5, abs=0.01)


def test_validation():
    with pytest.raises(ValueError):
        BayesPredictor(window=0)
    with pytest.raises(ValueError):
        BayesPredictor(threshold=1.5)
    with pytest.raises(ValueError):
        BayesPredictor(alpha=0)


def test_on_generated_log(anl_events):
    """On the realistic log the Bayes baseline is usable but weaker than
    the rule method in precision (soft evidence fires more broadly)."""
    cut = int(len(anl_events) * 0.7)
    train = anl_events.select(slice(0, cut))
    test = anl_events.select(slice(cut, len(anl_events)))
    bp = BayesPredictor(window=30 * MINUTE, threshold=0.6).fit(train)
    m = match_warnings(bp.predict(test), test).metrics
    assert 0.0 <= m.precision <= 1.0
    assert m.n_warnings < len(test)  # not a warning firehose
