"""Tests for repro.predictors.rulebased."""

import pytest

from repro.predictors.rulebased import RuleBasedPredictor
from repro.ras.fields import Severity
from repro.ras.store import EventStore
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import MINUTE
from tests.conftest import make_event


def _labeled(events):
    return TaxonomyClassifier().classify_store(EventStore.from_events(events))


def _chain(t0, with_head=True):
    """One watchdog+assert -> kernelPanic chain instance."""
    events = [
        make_event(time=t0, severity=Severity.WARNING,
                   entry="watchdog timer approaching expiration"),
        make_event(time=t0 + 60, severity=Severity.ERROR,
                   entry="kernel assertion failed: internal consistency check"),
    ]
    if with_head:
        events.append(
            make_event(time=t0 + 180, severity=Severity.FAILURE,
                       entry="kernel panic: unrecoverable condition detected")
        )
    return events


@pytest.fixture
def train_store():
    events = []
    for k in range(30):
        events.extend(_chain(10_000 + k * 7200, with_head=True))
    return _labeled(events)


def test_fit_mines_planted_rule(train_store):
    rb = RuleBasedPredictor(rule_window=15 * MINUTE).fit(train_store)
    assert rb.ruleset is not None and len(rb.ruleset) >= 1
    top = rb.ruleset[0]
    names = {rb.ruleset.item_names[i] for i in top.body}
    assert names == {"watchdogTimerWarning", "kernelAssertError"}
    assert top.confidence == pytest.approx(1.0)


def test_no_precursor_fraction_zero_for_pure_chains(train_store):
    rb = RuleBasedPredictor(rule_window=15 * MINUTE).fit(train_store)
    assert rb.no_precursor_fraction == 0.0


def test_predict_fires_on_body_completion(train_store):
    rb = RuleBasedPredictor(
        rule_window=15 * MINUTE, prediction_window=10 * MINUTE
    ).fit(train_store)
    test = _labeled(_chain(500_000, with_head=True))
    warnings = rb.predict(test)
    assert len(warnings) == 1
    w = warnings[0]
    assert w.issued_at == 500_060  # the completing (second) body item
    assert w.source == "rule"
    assert "kernelPanicFailure" in w.detail


def test_predict_no_warning_without_full_body(train_store):
    rb = RuleBasedPredictor(rule_window=15 * MINUTE).fit(train_store)
    test = _labeled([
        make_event(time=500_000, severity=Severity.WARNING,
                   entry="watchdog timer approaching expiration"),
    ])
    assert rb.predict(test) == []


def test_predict_window_eviction(train_store):
    """Body items farther apart than the prediction window never complete."""
    rb = RuleBasedPredictor(
        rule_window=15 * MINUTE, prediction_window=5 * MINUTE
    ).fit(train_store)
    test = _labeled([
        make_event(time=500_000, severity=Severity.WARNING,
                   entry="watchdog timer approaching expiration"),
        make_event(time=500_000 + 6 * MINUTE, severity=Severity.ERROR,
                   entry="kernel assertion failed: internal consistency check"),
    ])
    assert rb.predict(test) == []


def test_predict_dedup_while_active(train_store):
    """A matched rule is one prediction while its horizon is active."""
    rb = RuleBasedPredictor(
        rule_window=15 * MINUTE, prediction_window=30 * MINUTE
    ).fit(train_store)
    events = _chain(500_000, with_head=False) + _chain(
        500_000 + 5 * MINUTE, with_head=False
    )
    warnings = rb.predict(_labeled(events))
    assert len(warnings) == 1


def test_predict_refires_after_horizon(train_store):
    rb = RuleBasedPredictor(
        rule_window=15 * MINUTE, prediction_window=5 * MINUTE
    ).fit(train_store)
    events = _chain(500_000, with_head=False) + _chain(
        500_000 + 3600, with_head=False
    )
    warnings = rb.predict(_labeled(events))
    assert len(warnings) == 2


def test_fatal_events_do_not_enter_window(train_store):
    """Fatal arrivals must not contribute items to rule bodies."""
    rb = RuleBasedPredictor(rule_window=15 * MINUTE).fit(train_store)
    test = _labeled([
        make_event(time=500_000, severity=Severity.FAILURE,
                   entry="kernel panic: unrecoverable condition detected"),
    ])
    assert rb.predict(test) == []


def test_predict_empty_ruleset():
    rb = RuleBasedPredictor(rule_window=15 * MINUTE).fit(
        TaxonomyClassifier().classify_store(EventStore.empty())
    )
    assert rb.predict(
        TaxonomyClassifier().classify_store(EventStore.empty())
    ) == []


def test_miner_choice_equivalent(train_store):
    a = RuleBasedPredictor(miner="apriori").fit(train_store)
    f = RuleBasedPredictor(miner="fpgrowth").fit(train_store)
    assert {(r.body, r.heads) for r in a.ruleset} == {
        (r.body, r.heads) for r in f.ruleset
    }


def test_parameter_validation():
    with pytest.raises(ValueError):
        RuleBasedPredictor(rule_window=0)
    with pytest.raises(ValueError):
        RuleBasedPredictor(prediction_window=-5)


def test_warning_confidence_matches_rule(train_store):
    rb = RuleBasedPredictor(rule_window=15 * MINUTE).fit(train_store)
    test = _labeled(_chain(500_000))
    [w] = rb.predict(test)
    assert w.confidence == rb.ruleset[0].confidence
