"""The invariant gate: the repository's own tree must lint clean.

This is the pytest integration the tentpole asks for — any PR that
introduces ambient randomness, wall-clock reads, unguarded binary searches,
minute-valued window literals or unvalidated fractions fails this test with
the full diagnostic listing in the assertion message.
"""

from pathlib import Path

from tools.repro_lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTED_TREES = ["src", "tests", "benchmarks", "scripts"]


def test_repository_tree_is_lint_clean():
    findings = lint_paths([REPO_ROOT / tree for tree in LINTED_TREES])
    listing = "\n".join(d.format() for d in findings)
    assert not findings, f"repro-lint found violations:\n{listing}"
