"""The invariant gate: the repository's own tree must lint clean.

This is the pytest integration the tentpole asks for — any PR that
introduces ambient randomness, wall-clock reads, unguarded binary searches,
minute-valued window literals, unvalidated fractions, upward package
imports, unseeded-entropy entry points, unpicklable pool submissions or
event-loop-blocking coroutines fails this test with the full diagnostic
listing in the assertion message.
"""

from pathlib import Path

from tools.repro_lint.engine import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTED_TREES = ["src", "tests", "benchmarks", "scripts", "tools"]


def test_repository_tree_is_lint_clean():
    result = run_lint([REPO_ROOT / tree for tree in LINTED_TREES])
    errors = [d for d in result.diagnostics if d.severity == "error"]
    listing = "\n".join(d.format() for d in errors)
    assert not errors, f"repro-lint found violations:\n{listing}"


def test_repository_tree_has_no_warn_debt():
    """Warn-tier findings must be fixed, waived, or parked in the baseline
    deliberately — not accumulate silently."""
    result = run_lint([REPO_ROOT / tree for tree in LINTED_TREES])
    warns = [d for d in result.diagnostics if d.severity != "error"]
    listing = "\n".join(d.format() for d in warns)
    assert not warns, (
        f"repro-lint warn/info findings (fix, waive, or baseline them):\n"
        f"{listing}"
    )
