"""Per-rule unit tests for tools.repro_lint.

Each rule gets at least one true-positive fixture (the violation is caught,
with the expected code and line) and negative fixtures showing the idiomatic
compliant spelling is accepted.
"""

import textwrap

from tools.repro_lint import lint_source

LIB_PATH = "src/repro/somepkg/mod.py"  # a path inside the library scope


def lint(source, path=LIB_PATH, select=None):
    from tools.repro_lint.registry import all_rules

    rules = all_rules()
    if select:
        rules = [r for r in rules if r.code in select]
    return lint_source(textwrap.dedent(source), path=path, rules=rules)


def codes_and_lines(diags):
    return [(d.code, d.line) for d in diags]


# ---------------------------------------------------------------- RL001


def test_rl001_flags_np_random_calls():
    diags = lint(
        """\
        import numpy as np

        def jitter(xs):
            np.random.seed(0)
            return xs + np.random.random(xs.size)
        """
    )
    assert codes_and_lines(diags) == [("RL001", 4), ("RL001", 5)]


def test_rl001_flags_default_rng_and_stdlib_random():
    diags = lint(
        """\
        import random
        from numpy.random import default_rng

        def sample():
            rng = default_rng()
            return rng.random() + random.random()
        """
    )
    assert [d.code for d in diags] == ["RL001", "RL001"]
    assert "numpy.random.default_rng" in diags[0].message
    assert "random.random" in diags[1].message


def test_rl001_resolves_import_aliases():
    diags = lint(
        """\
        import numpy as xp

        def noise(n):
            return xp.random.normal(size=n)
        """
    )
    assert codes_and_lines(diags) == [("RL001", 4)]


def test_rl001_allows_threaded_generator_and_constructors():
    diags = lint(
        """\
        import numpy as np

        def noise(rng: np.random.Generator, n):
            assert isinstance(rng, np.random.Generator)
            seq = np.random.SeedSequence(42)
            return rng.normal(size=n), seq
        """
    )
    assert diags == []


def test_rl001_exempts_rng_module():
    source = """\
        import numpy as np

        def as_generator(seed=None):
            return np.random.default_rng(seed)
        """
    assert lint(source, path="src/repro/util/rng.py") == []
    assert [d.code for d in lint(source)] == ["RL001"]


def test_rl001_waivable_per_line():
    diags = lint(
        """\
        import numpy as np

        def reference_draw():
            return np.random.default_rng(0).random()  # repro-lint: disable=RL001
        """
    )
    assert diags == []


# ---------------------------------------------------------------- RL002


def test_rl002_flags_wall_clock_in_library():
    diags = lint(
        """\
        import time
        from datetime import datetime

        def stamp():
            return time.time(), datetime.now()
        """
    )
    assert codes_and_lines(diags) == [("RL002", 5), ("RL002", 5)]


def test_rl002_allows_monotonic_and_non_library_code():
    clocky = """\
        import time

        def elapsed():
            return time.time()
        """
    assert lint(clocky, path="scripts/bench.py") == []
    assert lint(clocky, path="benchmarks/bench_x.py") == []
    monotonic = """\
        import time

        def elapsed(t0):
            return time.monotonic() - t0
        """
    assert lint(monotonic) == []


# ---------------------------------------------------------------- RL003


def test_rl003_flags_unguarded_searchsorted_on_parameter():
    diags = lint(
        """\
        import numpy as np

        def lookup(times, t):
            return np.searchsorted(times, t)
        """
    )
    assert codes_and_lines(diags) == [("RL003", 4)]
    assert "lookup" in diags[0].message


def test_rl003_flags_method_form_and_window_slice():
    diags = lint(
        """\
        from repro.util.windows import window_slice

        def a(times, t):
            return times.searchsorted(t)

        def b(times, t0, t1):
            return window_slice(times, t0, t1)
        """
    )
    assert codes_and_lines(diags) == [("RL003", 4), ("RL003", 7)]


def test_rl003_guard_must_precede_sink():
    guarded = """\
        import numpy as np
        from repro.util.validation import check_sorted

        def lookup(times, t):
            times = check_sorted(np.asarray(times), "times")
            return np.searchsorted(times, t)
        """
    assert lint(guarded) == []
    guard_too_late = """\
        import numpy as np
        from repro.util.validation import check_sorted

        def lookup(times, t):
            i = np.searchsorted(times, t)
            check_sorted(times, "times")
            return i
        """
    assert [d.code for d in lint(guard_too_late)] == ["RL003"]


def test_rl003_ignores_derived_locals():
    diags = lint(
        """\
        import numpy as np

        def lookup(store, t):
            fatal_times = store.fatal_events().times
            return np.searchsorted(fatal_times, t)
        """
    )
    assert diags == []


def test_rl003_sorted_waiver_on_def_or_sink_line():
    on_def = """\
        import numpy as np

        def lookup(times, t):  # repro-lint: sorted
            return np.searchsorted(times, t)
        """
    assert lint(on_def) == []
    on_sink = """\
        import numpy as np

        def lookup(times, t):
            return np.searchsorted(times, t)  # repro-lint: sorted
        """
    assert lint(on_sink) == []


# ---------------------------------------------------------------- RL004


def test_rl004_flags_paper_minute_values_in_window_kwargs():
    diags = lint(
        """\
        def run(fit, count):
            fit(rule_window=15, prediction_window=25)
            fit(window=60)
            count(offset_lo=5, gap=60)
        """
    )
    assert [d.code for d in diags] == ["RL004"] * 5
    assert "seconds" in diags[0].message


def test_rl004_allows_second_counts_and_minute_arithmetic():
    diags = lint(
        """\
        MINUTE = 60

        def run(fit):
            fit(rule_window=15 * MINUTE, prediction_window=900)
            fit(window=1800.0, min_lead=60)
            fit(25, 5)  # positional values are out of scope
        """
    )
    assert diags == []


# ---------------------------------------------------------------- RL005


def test_rl005_flags_unvalidated_fraction_params():
    diags = lint(
        """\
        def mine(transactions, min_support=0.04, keep_prob=0.5):
            return [t for t in transactions]
        """
    )
    assert [d.code for d in diags] == ["RL005", "RL005"]
    assert {"min_support", "keep_prob"} == {
        d.message.split("'")[1] for d in diags
    }


def test_rl005_accepts_check_fraction_and_check_in_range():
    diags = lint(
        """\
        from repro.util.validation import check_fraction, check_in_range

        def mine(min_support=0.04, confidence=0.2):
            min_support = check_fraction(min_support, "min_support")
            check_in_range(confidence, 0, 1, "confidence")
            return min_support, confidence
        """
    )
    assert diags == []


def test_rl005_covers_public_constructors_only():
    diags = lint(
        """\
        from repro.util.validation import check_fraction

        class Predictor:
            def __init__(self, min_support=0.04):
                self.min_support = min_support

        class _Helper:
            def __init__(self, min_support=0.04):
                self.min_support = min_support

        def _private(min_support):
            return min_support
        """
    )
    assert codes_and_lines(diags) == [("RL005", 4)]


def test_rl005_scoped_to_library_code():
    source = """\
        def mine(min_support=0.04):
            return min_support
        """
    assert lint(source, path="benchmarks/bench_minsup.py") == []
    assert [d.code for d in lint(source)] == ["RL005"]


# ---------------------------------------------------------------- RL006


def test_rl006_flags_print_and_stream_writes():
    diags = lint(
        """\
        import sys

        def report(msg):
            print(msg)
            sys.stderr.write(msg)
            sys.stdout.writelines([msg])
        """
    )
    assert codes_and_lines(diags) == [
        ("RL006", 4),
        ("RL006", 5),
        ("RL006", 6),
    ]
    assert "print()" in diags[0].message
    assert "sys.stderr.write" in diags[1].message


def test_rl006_resolves_stream_import_aliases():
    diags = lint(
        """\
        from sys import stderr

        def report(msg):
            stderr.write(msg)
        """
    )
    assert codes_and_lines(diags) == [("RL006", 4)]


def test_rl006_exempts_cli_and_non_library_code():
    source = """\
        def report(msg):
            print(msg)
        """
    assert lint(source, path="src/repro/cli/main.py") == []
    assert lint(source, path="scripts/demo.py") == []
    assert lint(source, path="benchmarks/bench_x.py") == []
    assert [d.code for d in lint(source)] == ["RL006"]


def test_rl006_allows_obs_instrumentation_and_is_waivable():
    diags = lint(
        """\
        from repro.obs import get_registry

        def fit(events):
            get_registry().counter("predictor.fits")
            print("debug")  # repro-lint: disable=RL006
            return events
        """
    )
    assert diags == []


# ---------------------------------------------------------------- RL007


def test_rl007_flags_lambda_factories():
    diags = lint(
        """\
        from repro.evaluation.crossval import cross_validate
        from repro.evaluation.sweep import prediction_window_sweep

        def measure(events, factory):
            cv = cross_validate(lambda: factory(1800.0), events, k=10)
            pts = prediction_window_sweep(
                lambda w: factory(w), events, k=10
            )
            return cv, pts
        """
    )
    assert codes_and_lines(diags) == [("RL007", 5), ("RL007", 6)]
    assert "lambda factory" in diags[0].message


def test_rl007_flags_deprecated_alias_even_without_lambda():
    diags = lint(
        """\
        from repro.evaluation.sweep import rule_window_sweep

        def measure(events, spec):
            return rule_window_sweep(spec, events, k=10)
        """
    )
    assert codes_and_lines(diags) == [("RL007", 4)]
    assert "deprecated" in diags[0].message


def test_rl007_alias_with_lambda_yields_both_findings():
    diags = lint(
        """\
        from repro.evaluation.sweep import rule_window_sweep

        def measure(events, factory):
            return rule_window_sweep(lambda g: factory(g), events)
        """
    )
    assert [d.code for d in diags] == ["RL007", "RL007"]


def test_rl007_accepts_specs_and_non_library_code():
    clean = """\
        from repro.evaluation.crossval import cross_validate
        from repro.evaluation.spec import PredictorSpec

        def measure(events):
            spec = PredictorSpec.meta(prediction_window=1800.0)
            return cross_validate(spec, events, k=10, jobs=4)
        """
    assert lint(clean) == []
    lambda_src = """\
        from repro.evaluation.crossval import cross_validate

        def measure(events, factory):
            return cross_validate(lambda: factory(), events)
        """
    assert lint(lambda_src, path="benchmarks/bench_x.py") == []
    assert lint(lambda_src, path="tests/evaluation/test_x.py") == []
    assert [d.code for d in lint(lambda_src)] == ["RL007"]


def test_rl007_waives_the_legacy_shim_module():
    source = """\
        from repro.evaluation.crossval import cross_validate

        def prediction_window_sweep(factory, events, windows, k=10):
            return [
                cross_validate(lambda w=w: factory(w), events, k=k)
                for w in windows
            ]
        """
    assert lint(source, path="src/repro/evaluation/sweep.py") == []
    assert [d.code for d in lint(source)] == ["RL007"]


# ---------------------------------------------------------------- RL008

ONLINE_PATH = "src/repro/online/detector.py"


def test_rl008_flags_deque_rebuild_in_per_event_method():
    diags = lint(
        """\
        from collections import deque

        class Session:
            def _expire(self, now):
                self._pending = deque(
                    w for w in self._pending if w.horizon_end >= now
                )
        """,
        path=ONLINE_PATH,
    )
    assert codes_and_lines(diags) == [("RL008", 5)]
    assert "_expire" in diags[0].message


def test_rl008_flags_list_copy_and_aliased_deque():
    diags = lint(
        """\
        import collections as c

        class Session:
            def process(self, event):
                self._pending = list(self._pending)
                self._live = c.deque(self._live)
        """,
        path="src/repro/serve/pool.py",
    )
    assert codes_and_lines(diags) == [("RL008", 5), ("RL008", 6)]
    assert "list(...)" in diags[0].message
    assert "deque(...)" in diags[1].message


def test_rl008_accepts_batch_methods_and_empty_list():
    assert (
        lint(
            """\
            from collections import deque

            class Session:
                def __init__(self):
                    self._pending = deque()

                def process_store(self, store):
                    times = list(store.times)
                    return deque(times)

                def process(self, event):
                    out = list()
                    out.append(event)
                    return out
            """,
            path=ONLINE_PATH,
        )
        == []
    )


def test_rl008_scoped_to_online_and_serve_packages():
    source = """\
        from collections import deque

        class Thing:
            def process(self, event):
                self._items = deque(self._items)
        """
    assert [d.code for d in lint(source, path=ONLINE_PATH)] == ["RL008"]
    assert lint(source, path="src/repro/mining/rules.py") == []
    assert lint(source, path="tests/online/test_x.py") == []


def test_rl008_waivable_with_justification():
    diags = lint(
        """\
        from collections import deque

        class Session:
            def process(self, event):
                self._pending = deque(self._pending)  # repro-lint: disable=RL008
        """,
        path=ONLINE_PATH,
    )
    assert diags == []


# ---------------------------------------------------------------- RL009


def test_rl009_flags_pickle_of_anything_in_library_code():
    diags = lint(
        """\
        import pickle

        def stash(predictor, fh):
            pickle.dump(predictor, fh)
            return pickle.dumps({"x": 1})
        """
    )
    assert codes_and_lines(diags) == [("RL009", 4), ("RL009", 5)]
    assert "pickle.dump" in diags[0].message


def test_rl009_resolves_pickle_aliases_and_loads():
    diags = lint(
        """\
        import pickle as pkl
        from pickle import loads

        def restore(blob):
            return pkl.load(blob) or loads(blob)
        """
    )
    assert [d.code for d in diags] == ["RL009", "RL009"]


def test_rl009_flags_adhoc_json_dump_of_predictor_payloads():
    diags = lint(
        """\
        import json

        def export(model, meta, fh):
            json.dump(model.__dict__, fh)
            blob = json.dumps({"state": meta})
            return blob
        """
    )
    assert codes_and_lines(diags) == [("RL009", 4), ("RL009", 5)]


def test_rl009_allows_plain_json_and_blessed_modules():
    # Non-predictor JSON payloads are fine anywhere.
    assert (
        lint(
            """\
            import json

            def export(rows, fh):
                json.dump({"rows": rows}, fh)
            """
        )
        == []
    )
    # The serialization layer and the lifecycle registry are the two
    # blessed homes of model persistence.
    source = """\
        import json

        def save(model, fh):
            json.dump(model, fh)
        """
    assert lint(source, path="src/repro/core/serialize.py") == []
    assert lint(source, path="src/repro/lifecycle/registry.py") == []
    # Outside the library (tests, tools) the rule does not apply.
    assert lint(source, path="tests/core/test_serialize.py") == []


def test_rl009_waivable_with_justification():
    diags = lint(
        """\
        import pickle

        def debug_dump(predictor, fh):
            pickle.dump(predictor, fh)  # repro-lint: disable=RL009
        """
    )
    assert diags == []


# ------------------------------------------------------- engine/waivers


def test_unknown_directive_reported_as_rl000():
    diags = lint(
        """\
        x = 1  # repro-lint: sortd
        """
    )
    assert [d.code for d in diags] == ["RL000"]
    assert "sortd" in diags[0].message


def test_syntax_error_reported_as_rl999():
    diags = lint("def broken(:\n")
    assert [d.code for d in diags] == ["RL999"]


# ---------------------------------------------------------------- RL014


def test_rl014_flags_column_rebind_and_element_writes():
    diags = lint(
        """\
        def mutate(store, arr):
            store.times = arr
            store.severities[0] = 5
            store.subcat_ids[:] = -1
        """,
        select={"RL014"},
    )
    assert codes_and_lines(diags) == [
        ("RL014", 2),
        ("RL014", 3),
        ("RL014", 4),
    ]
    assert "rebind of .times" in diags[0].message
    assert "element write" in diags[1].message


def test_rl014_flags_augmented_assignment():
    diags = lint(
        """\
        def shift(store, dt):
            store.times += dt
        """,
        select={"RL014"},
    )
    assert codes_and_lines(diags) == [("RL014", 2)]


def test_rl014_allows_self_attributes_and_reads():
    diags = lint(
        """\
        class Window:
            def __init__(self, times):
                self.times = times
                self.times[0] = 0

        def span(store):
            t = store.times
            return t[-1] - t[0]
        """,
        select={"RL014"},
    )
    assert diags == []


def test_rl014_exempts_the_data_layer_and_tests():
    source = """\
        def rebuild(store, arr):
            store.times = arr
        """
    assert lint(source, path="src/repro/ras/store.py", select={"RL014"}) == []
    assert lint(source, path="tests/ras/test_store.py", select={"RL014"}) == []
    assert lint(source, path="src/repro/online/detector.py",
                select={"RL014"}) != []


def test_rl014_ignores_unrelated_attribute_names():
    diags = lint(
        """\
        def configure(obj):
            obj.timeout = 3
            obj.jobs_total = 7
        """,
        select={"RL014"},
    )
    assert diags == []


# ---------------------------------------------------------------- RL015

LIFECYCLE_PATH = "src/repro/lifecycle/retrain.py"


def test_rl015_flags_scratch_mining_in_lifecycle():
    diags = lint(
        """\
        from repro.mining.apriori import apriori
        from repro.mining.fptree import fpgrowth
        from repro.mining.rules import generate_rules

        def refit(db, transactions):
            freq = apriori(transactions, 0.04)
            freq2 = fpgrowth(transactions, 0.04)
            return generate_rules(db), freq, freq2
        """,
        path=LIFECYCLE_PATH,
        select={"RL015"},
    )
    assert codes_and_lines(diags) == [
        ("RL015", 6),
        ("RL015", 7),
        ("RL015", 8),
    ]


def test_rl015_sees_through_module_aliases():
    diags = lint(
        """\
        from repro.mining import rules as mining_rules

        def refit(db):
            return mining_rules.generate_rules(db)
        """,
        path=LIFECYCLE_PATH,
        select={"RL015"},
    )
    assert codes_and_lines(diags) == [("RL015", 4)]


def test_rl015_only_applies_to_lifecycle():
    source = """\
        from repro.mining.apriori import apriori

        def mine(transactions):
            return apriori(transactions, 0.04)
        """
    assert lint(source, path="src/repro/mining/wrapper.py",
                select={"RL015"}) == []
    assert lint(source, path="src/repro/evaluation/engine.py",
                select={"RL015"}) == []
    assert lint(source, path="tests/lifecycle/test_retrain.py",
                select={"RL015"}) == []
    assert lint(source, path=LIFECYCLE_PATH, select={"RL015"}) != []


def test_rl015_ignores_unrelated_functions_with_same_name():
    diags = lint(
        """\
        from mypackage.stats import apriori

        def refit(transactions):
            return apriori(transactions)
        """,
        path=LIFECYCLE_PATH,
        select={"RL015"},
    )
    assert diags == []


def test_rl015_is_waivable():
    diags = lint(
        """\
        from repro.mining.fptree import fpgrowth

        def diagnose(transactions):
            return fpgrowth(transactions, 0.04)  # repro-lint: disable=RL015
        """,
        path=LIFECYCLE_PATH,
        select={"RL015"},
    )
    assert diags == []


def test_rl015_allows_spec_fit_path():
    diags = lint(
        """\
        def retrain(spec, window):
            return spec.build().fit(window)
        """,
        path=LIFECYCLE_PATH,
        select={"RL015"},
    )
    assert diags == []


# ---------------------------------------------------------------- RL016


def test_rl016_flags_cost_arithmetic_in_library():
    diags = lint(
        """\
        def overhead(policy, n):
            wasted = n * policy.checkpoint_cost
            wasted += policy.restart_cost
            return wasted
        """,
        select={"RL016"},
    )
    assert codes_and_lines(diags) == [("RL016", 2), ("RL016", 3)]


def test_rl016_flags_bare_names_and_benchmarks():
    source = """\
    def total(checkpoint_cost, k):
        return checkpoint_cost * k
    """
    assert codes_and_lines(lint(source, path="benchmarks/bench_x.py",
                                select={"RL016"})) == [("RL016", 2)]


def test_rl016_exempts_actions_tests_and_tools():
    source = """\
    def total(cm, k):
        return cm.checkpoint_cost * k
    """
    assert lint(source, path="src/repro/actions/cost.py",
                select={"RL016"}) == []
    assert lint(source, path="tests/actions/test_cost.py",
                select={"RL016"}) == []
    assert lint(source, path="tools/somewhere/mod.py",
                select={"RL016"}) == []
    assert lint(source, select={"RL016"}) != []


def test_rl016_allows_cost_keywords_and_reads():
    diags = lint(
        """\
        from repro.actions import CostModel

        def build(args):
            cm = CostModel(checkpoint_cost=args.checkpoint_cost)
            print(cm.restart_cost)
            return cm
        """,
        select={"RL016"},
    )
    assert diags == []


def test_rl016_is_waivable():
    diags = lint(
        """\
        def ratio(cm):
            return cm.migration_cost / cm.checkpoint_cost  # repro-lint: disable=RL016
        """,
        select={"RL016"},
    )
    assert diags == []
