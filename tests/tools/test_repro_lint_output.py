"""Output and policy tests: SARIF shape, baseline workflow, repo gates.

The last section holds the two policy gates CI leans on: the committed
baseline may never park an error-tier finding, and the architecture
contract must assign every package that actually exists under
``src/repro`` (RL010 silently skips unassigned packages, so totality has
to be asserted here, not in the rule).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tools.repro_lint.baseline import DEFAULT_BASELINE_PATH, Baseline
from tools.repro_lint.cli import main
from tools.repro_lint.contracts import load_contract
from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.registry import all_rules
from tools.repro_lint.sarif import SARIF_SCHEMA, SARIF_VERSION, to_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]


def _diag(path="src/x.py", line=3, code="RL001", message="msg",
          severity="error"):
    return Diagnostic(path=path, line=line, col=2, code=code,
                      message=message, hint="h", severity=severity)


# --------------------------------------------------------------------- #
# SARIF 2.1.0 shape.
# --------------------------------------------------------------------- #


def test_sarif_document_shape():
    doc = to_sarif(
        [_diag(), _diag(code="RL010", severity="warn")],
        all_rules(),
        tool_version="2.0.0",
    )
    assert doc["$schema"] == SARIF_SCHEMA
    assert doc["version"] == SARIF_VERSION
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert "RL001" in rule_ids and "RL013" in rule_ids
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "error", "warning", "note",
        )
    assert len(run["results"]) == 2
    first, second = run["results"]
    assert first["ruleId"] == "RL001"
    assert first["level"] == "error"
    assert second["level"] == "warning"
    loc = first["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/x.py"
    assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert loc["region"]["startLine"] == 3
    assert loc["region"]["startColumn"] == 3  # 0-based col 2 -> 1-based 3
    json.dumps(doc)  # must serialize


def test_sarif_cli_output(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text("import numpy as np\nx = np.random.rand()\n", "utf-8")
    sarif_file = tmp_path / "out.sarif"
    code = main([str(target), "--format", "sarif",
                 "--sarif-file", str(sarif_file)])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == SARIF_VERSION
    assert doc["runs"][0]["results"][0]["ruleId"] == "RL001"
    # --sarif-file wrote the same document.
    assert json.loads(sarif_file.read_text("utf-8")) == doc


# --------------------------------------------------------------------- #
# Baseline workflow: adopt -> clean -> regression.
# --------------------------------------------------------------------- #


def test_baseline_adopt_then_clean_then_regress(tmp_path, capsys):
    target = tmp_path / "legacy.py"
    target.write_text("import numpy as np\nx = np.random.rand()\n", "utf-8")
    baseline = tmp_path / "baseline.json"

    # Adopt: findings recorded, exit 0.
    assert main([str(target), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    data = json.loads(baseline.read_text("utf-8"))
    assert len(data["entries"]) == 1
    assert data["entries"][0]["code"] == "RL001"

    # Same findings against the baseline: absorbed, run is clean.
    capsys.readouterr()
    assert main([str(target), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out and "1 baselined" in out

    # A regression (second occurrence of the same finding shape elsewhere)
    # still fails.
    target2 = tmp_path / "fresh.py"
    target2.write_text("import numpy as np\ny = np.random.rand()\n", "utf-8")
    assert main([str(target), str(target2),
                 "--baseline", str(baseline)]) == 1


def test_baseline_count_budget():
    base = Baseline.from_diagnostics([_diag(line=3)])
    fresh, absorbed = base.split([_diag(line=3), _diag(line=9)])
    assert len(absorbed) == 1  # one occurrence absorbed...
    assert len(fresh) == 1     # ...the extra one is a regression


def test_missing_baseline_is_usage_error(tmp_path, capsys):
    target = tmp_path / "ok.py"
    target.write_text("x = 1\n", "utf-8")
    assert main([str(target), "--baseline",
                 str(tmp_path / "nope.json")]) == 2
    assert "no baseline" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# CLI: severity threshold, stats, metrics file.
# --------------------------------------------------------------------- #


def test_fail_on_threshold(tmp_path):
    # A typing-only upward import is warn-tier: --fail-on error passes,
    # --fail-on warn fails.
    root = tmp_path / "src" / "repro"
    (root / "util").mkdir(parents=True)
    (root / "cli").mkdir()
    (root / "__init__.py").write_text("")
    (root / "util" / "__init__.py").write_text("")
    (root / "cli" / "__init__.py").write_text("")
    (root / "cli" / "main.py").write_text("class App:\n    pass\n")
    (root / "util" / "helper.py").write_text(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.cli.main import App\n"
    )
    import os
    cwd = os.getcwd()
    os.chdir(tmp_path)
    try:
        assert main(["src", "--fail-on", "error"]) == 0
        assert main(["src", "--fail-on", "warn"]) == 1
    finally:
        os.chdir(cwd)


def test_stats_and_metrics_file(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n", "utf-8")
    metrics = tmp_path / "metrics.json"
    assert main([str(target), "--stats", "--emit-metrics",
                 str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "files scanned:" in out
    assert "findings by tier:" in out
    summary = json.loads(metrics.read_text("utf-8"))
    assert summary["files_scanned"] == 1
    assert summary["severity_counts"] == {"error": 0, "warn": 0, "info": 0}
    assert summary["cache"] == "off"


def test_cache_roundtrip_via_cli(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", "utf-8")
    cache = tmp_path / ".lint-cache"
    metrics = tmp_path / "m.json"
    main([str(target), "--cache-dir", str(cache),
          "--emit-metrics", str(metrics)])
    assert json.loads(metrics.read_text("utf-8"))["cache"] == "miss"
    main([str(target), "--cache-dir", str(cache),
          "--emit-metrics", str(metrics)])
    assert json.loads(metrics.read_text("utf-8"))["cache"] == "hit"


def test_obs_counters_recorded(tmp_path):
    # With a live registry installed, the engine emits lint.* metrics.
    from repro.obs import MetricsRegistry, use

    reg = MetricsRegistry()
    target = tmp_path / "bad.py"
    target.write_text("import numpy as np\nx = np.random.rand()\n", "utf-8")
    with use(reg):
        main([str(target)])
    assert any(k.startswith("lint.findings") for k in reg.counters)
    assert any(
        k.startswith("lint.graph_build_seconds") for k in reg.histograms
    )
    assert any(k.startswith("lint.files_scanned") for k in reg.gauges)


# --------------------------------------------------------------------- #
# Repo policy gates (run against the real tree).
# --------------------------------------------------------------------- #


def test_committed_baseline_has_zero_error_entries():
    baseline = Baseline.load(DEFAULT_BASELINE_PATH)
    assert baseline.error_entries() == [], (
        "the committed baseline may park warn/info debt but never "
        "error-tier findings — fix them instead"
    )


def test_contract_assigns_every_repro_package():
    contract = load_contract()
    assigned = contract.assigned_packages()
    src_repro = REPO_ROOT / "src" / "repro"
    actual = {
        p.name
        for p in src_repro.iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    }
    unassigned = actual - assigned
    assert not unassigned, (
        f"packages missing from tools/repro_lint/contracts.toml: "
        f"{sorted(unassigned)} — RL010 skips unassigned packages, so "
        f"every package must be placed in a layer"
    )
    ghosts = assigned - actual
    assert not ghosts, (
        f"contract names packages that do not exist: {sorted(ghosts)}"
    )


@pytest.mark.slow
def test_whole_program_pass_under_ten_seconds():
    import time

    from tools.repro_lint.engine import run_lint

    t0 = time.perf_counter()
    run_lint(
        [str(REPO_ROOT / d) for d in ("src", "tools", "tests", "benchmarks")]
    )
    assert time.perf_counter() - t0 < 10.0
