"""Graph-rule tests: one synthetic violation per rule, tiers, waivers.

Each RL010-RL013 rule gets at least one minimal module set that triggers
it, asserting the rule id, severity tier and source span; plus the
negative space around it (typing-only demotion, bound-method warn tier,
data-position initargs staying silent, waiver suppression through the
full engine).
"""

from __future__ import annotations

import textwrap

from tools.repro_lint.contracts import Contract, Layer
from tools.repro_lint.engine import GraphContext, run_lint
from tools.repro_lint.graph import build_project_from_sources
from tools.repro_lint.registry import get_rule


def two_layer_contract(**kwargs):
    return Contract(
        root="repro",
        layers=[
            Layer(name="low", index=0, packages=("low",)),
            Layer(name="high", index=1, packages=("high",)),
        ],
        exempt_modules=("repro",),
        **kwargs,
    )


def findings(rule_code, sources, contract):
    model = build_project_from_sources(sources)
    gctx = GraphContext(project=model, contract=contract)
    return list(get_rule(rule_code).check_project(gctx))


# --------------------------------------------------------------------- #
# RL010 — layering contract.
# --------------------------------------------------------------------- #


def test_rl010_upward_import_is_error():
    diags = findings("RL010", {
        "repro.low.mod": "from repro.high.api import thing\n",
        "repro.high.api": "thing = 1\n",
    }, two_layer_contract())
    assert len(diags) == 1
    d = diags[0]
    assert d.code == "RL010"
    assert d.severity == "error"
    assert d.path == "repro/low/mod.py"
    assert (d.line, d.col) == (1, 0)
    assert "upward import" in d.message


def test_rl010_downward_import_is_clean():
    diags = findings("RL010", {
        "repro.high.api": "from repro.low.mod import x\n",
        "repro.low.mod": "x = 1\n",
    }, two_layer_contract())
    assert diags == []


def test_rl010_typing_only_upward_demotes_to_warn():
    src = textwrap.dedent("""\
        from typing import TYPE_CHECKING
        if TYPE_CHECKING:
            from repro.high.api import Thing
    """)
    diags = findings("RL010", {
        "repro.low.mod": src,
        "repro.high.api": "class Thing:\n    pass\n",
    }, two_layer_contract())
    assert len(diags) == 1
    assert diags[0].severity == "warn"
    assert "typing-only" in diags[0].message


def test_rl010_package_cycle_is_error():
    # high -> low is layer-legal, but low -> high closes a cycle; both
    # directions are reported (one upward, one cycle edge).
    diags = findings("RL010", {
        "repro.low.a": "from repro.high.b import g\n",
        "repro.high.b": "from repro.low.a import f\ng = 1\nf = 2\n",
    }, two_layer_contract())
    codes = {(d.message.split(":")[0], d.severity) for d in diags}
    assert ("upward import", "error") in codes
    assert ("package cycle", "error") in codes


def test_rl010_unassigned_package_is_skipped():
    contract = Contract(
        root="repro",
        layers=[Layer(name="only", index=0, packages=("low",))],
        exempt_modules=("repro",),
    )
    diags = findings("RL010", {
        "repro.low.mod": "from repro.stranger.api import x\n",
        "repro.stranger.api": "x = 1\n",
    }, contract)
    assert diags == []


# --------------------------------------------------------------------- #
# RL011 — determinism taint.
# --------------------------------------------------------------------- #


def test_rl011_ambient_rng_reachable_from_entry_point():
    sources = {
        "repro.low.helper": textwrap.dedent("""\
            import numpy as np
            def jitter(x):
                return x + np.random.normal()
        """),
        "repro.low.model": textwrap.dedent("""\
            from repro.low.helper import jitter
            class M:
                def fit(self, x):
                    return jitter(x)
        """),
    }
    diags = findings(
        "RL011", sources,
        two_layer_contract(rl011_entry_points=("fit", "predict")),
    )
    assert len(diags) == 1
    d = diags[0]
    assert d.code == "RL011" and d.severity == "error"
    assert d.path == "repro/low/helper.py"
    assert d.line == 3  # the np.random.normal() call site
    assert "repro.low.model.M.fit" in d.message
    assert "repro.low.helper.jitter" in d.message


def test_rl011_unseeded_as_generator_is_tainted():
    sources = {
        "repro.low.gen": textwrap.dedent("""\
            from repro.util.rng import as_generator
            def sample(n):
                rng = as_generator()
                return rng.integers(n)
        """),
    }
    diags = findings(
        "RL011", sources, two_layer_contract(rl011_entry_points=("sample",)),
    )
    assert len(diags) == 1
    assert "fresh entropy" in diags[0].message


def test_rl011_seeded_generator_is_clean():
    sources = {
        "repro.low.gen": textwrap.dedent("""\
            from repro.util.rng import as_generator
            def sample(n, seed):
                rng = as_generator(seed)
                return rng.integers(n)
        """),
    }
    diags = findings(
        "RL011", sources, two_layer_contract(rl011_entry_points=("sample",)),
    )
    assert diags == []


def test_rl011_taint_unreachable_from_entry_points_is_clean():
    sources = {
        "repro.low.dev": textwrap.dedent("""\
            import random
            def _debug_shuffle(items):
                random.shuffle(items)
        """),
    }
    diags = findings(
        "RL011", sources, two_layer_contract(rl011_entry_points=("fit",)),
    )
    assert diags == []


# --------------------------------------------------------------------- #
# RL012 — process-boundary safety.
# --------------------------------------------------------------------- #


def test_rl012_lambda_submit_is_error():
    sources = {
        "repro.low.par": textwrap.dedent("""\
            from concurrent.futures import ProcessPoolExecutor
            def run(items):
                with ProcessPoolExecutor() as pool:
                    futs = [pool.submit(lambda x: x + 1, i) for i in items]
                return [f.result() for f in futs]
        """),
    }
    diags = findings("RL012", sources, two_layer_contract())
    assert len(diags) == 1
    d = diags[0]
    assert d.code == "RL012" and d.severity == "error"
    assert d.line == 4
    assert "lambda" in d.message


def test_rl012_closure_submit_is_error():
    sources = {
        "repro.low.par": textwrap.dedent("""\
            from concurrent.futures import ProcessPoolExecutor
            def run(items, offset):
                def shifted(x):
                    return x + offset
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(shifted, i) for i in items]
        """),
    }
    diags = findings("RL012", sources, two_layer_contract())
    assert len(diags) == 1
    assert diags[0].severity == "error"
    assert "nested function" in diags[0].message


def test_rl012_bound_method_initializer_is_warn():
    sources = {
        "repro.low.par": textwrap.dedent("""\
            from concurrent.futures import ProcessPoolExecutor
            class Runner:
                def setup(self):
                    pass
                def run(self, items):
                    with ProcessPoolExecutor(initializer=self.setup) as pool:
                        return list(pool.map(str, items))
        """),
    }
    diags = findings("RL012", sources, two_layer_contract())
    assert len(diags) == 1
    assert diags[0].severity == "warn"
    assert "bound method" in diags[0].message


def test_rl012_data_attribute_in_initargs_is_clean():
    # self.config in initargs is data, not a callable: picklable by intent.
    sources = {
        "repro.low.par": textwrap.dedent("""\
            from concurrent.futures import ProcessPoolExecutor
            def _init(cfg):
                pass
            class Runner:
                def run(self, items):
                    with ProcessPoolExecutor(
                        initializer=_init, initargs=(self.config,)
                    ) as pool:
                        return list(pool.map(str, items))
        """),
    }
    assert findings("RL012", sources, two_layer_contract()) == []


def test_rl012_module_level_function_is_clean():
    sources = {
        "repro.low.par": textwrap.dedent("""\
            from concurrent.futures import ProcessPoolExecutor
            def work(x):
                return x + 1
            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
        """),
    }
    assert findings("RL012", sources, two_layer_contract()) == []


# --------------------------------------------------------------------- #
# RL013 — async-blocking.
# --------------------------------------------------------------------- #


def test_rl013_direct_blocking_in_async_is_error():
    sources = {
        "repro.low.daemon": textwrap.dedent("""\
            import time
            async def tick():
                time.sleep(1)
        """),
    }
    diags = findings("RL013", sources, two_layer_contract())
    assert len(diags) == 1
    d = diags[0]
    assert d.code == "RL013" and d.severity == "error"
    assert (d.line, d.col) == (3, 4)
    assert "time.sleep" in d.message


def test_rl013_transitive_blocking_through_sync_helper():
    sources = {
        "repro.low.io": textwrap.dedent("""\
            import subprocess
            def flush():
                subprocess.run(["sync"])
        """),
        "repro.low.daemon": textwrap.dedent("""\
            from repro.low.io import flush
            async def shutdown():
                flush()
        """),
    }
    diags = findings("RL013", sources, two_layer_contract())
    assert len(diags) == 1
    d = diags[0]
    assert d.path == "repro/low/daemon.py"
    assert d.line == 3  # the flush() call inside the coroutine
    assert "subprocess.run" in d.message
    assert "repro.low.io.flush" in d.message


def test_rl013_await_into_other_coroutine_is_clean():
    sources = {
        "repro.low.daemon": textwrap.dedent("""\
            import asyncio
            async def inner():
                await asyncio.sleep(1)
            async def outer():
                await inner()
        """),
    }
    assert findings("RL013", sources, two_layer_contract()) == []


def test_rl013_sync_function_blocking_alone_is_clean():
    sources = {
        "repro.low.io": textwrap.dedent("""\
            import time
            def pause():
                time.sleep(1)
        """),
    }
    assert findings("RL013", sources, two_layer_contract()) == []


# --------------------------------------------------------------------- #
# Waivers and the full engine path (real contract, tmp tree).
# --------------------------------------------------------------------- #


def _write_tree(root, files):
    for rel, content in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(content, "utf-8")


def test_graph_rule_fires_through_run_lint(tmp_path, monkeypatch):
    # util (foundation) importing cli (app) is upward under the real
    # committed contract.
    _write_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/util/__init__.py": "",
        "src/repro/util/helper.py": "from repro.cli.main import x\n",
        "src/repro/cli/__init__.py": "",
        "src/repro/cli/main.py": "x = 1\n",
    })
    monkeypatch.chdir(tmp_path)
    result = run_lint(["src"])
    rl010 = [d for d in result.diagnostics if d.code == "RL010"]
    assert len(rl010) == 1
    assert rl010[0].path.endswith("helper.py")


def test_graph_finding_respects_line_waiver(tmp_path, monkeypatch):
    _write_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/util/__init__.py": "",
        "src/repro/util/helper.py": (
            "from repro.cli.main import x  # repro-lint: disable=RL010\n"
        ),
        "src/repro/cli/__init__.py": "",
        "src/repro/cli/main.py": "x = 1\n",
    })
    monkeypatch.chdir(tmp_path)
    result = run_lint(["src"])
    assert [d for d in result.diagnostics if d.code == "RL010"] == []


def test_no_graph_skips_graph_rules(tmp_path, monkeypatch):
    _write_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/util/__init__.py": "",
        "src/repro/util/helper.py": "from repro.cli.main import x\n",
        "src/repro/cli/__init__.py": "",
        "src/repro/cli/main.py": "x = 1\n",
    })
    monkeypatch.chdir(tmp_path)
    result = run_lint(["src"], graph=False)
    assert [d for d in result.diagnostics if d.code == "RL010"] == []
