"""Integration tests: the repro-lint CLI on a temp tree with seeded bugs."""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

from tools.repro_lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def seed_violation_tree(root: Path) -> None:
    """A miniature src/ tree with one violation per rule, at known lines."""
    pkg = root / "src" / "repro" / "demo"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        textwrap.dedent(
            """\
            import time

            import numpy as np


            def jitter(xs):
                return xs + np.random.random(xs.size)


            def stamp():
                return time.time()


            def lookup(times, t):
                return np.searchsorted(times, t)


            def sweep(fit):
                return fit(rule_window=15)


            def mine(min_support=0.04):
                return min_support
            """
        ),
        encoding="utf-8",
    )
    (pkg / "good.py").write_text(
        textwrap.dedent(
            """\
            import numpy as np

            from repro.util.validation import check_fraction, check_sorted


            def lookup(times, t):
                times = check_sorted(times, "times")
                return np.searchsorted(times, t)


            def mine(min_support=0.04):
                return check_fraction(min_support, "min_support")
            """
        ),
        encoding="utf-8",
    )


EXPECTED = [
    ("RL001", 7),
    ("RL002", 11),
    ("RL003", 15),
    ("RL004", 19),
    ("RL005", 22),
]


def test_cli_reports_exact_codes_and_lines(tmp_path, capsys):
    seed_violation_tree(tmp_path)
    exit_code = main([str(tmp_path / "src"), "--no-hints"])
    out = capsys.readouterr().out
    assert exit_code == 1
    reported = []
    for line in out.splitlines():
        if "bad.py" in line:
            path_part, line_no, _col, rest = line.split(":", 3)
            reported.append((rest.strip().split()[0], int(line_no)))
        assert "good.py" not in line
    assert reported == EXPECTED
    assert "repro-lint: 5 findings" in out


def test_cli_select_restricts_rules(tmp_path, capsys):
    seed_violation_tree(tmp_path)
    exit_code = main([str(tmp_path / "src"), "--select", "RL004,RL005"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "RL004" in out and "RL005" in out
    assert "RL001" not in out and "RL002" not in out and "RL003" not in out


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert main([str(tmp_path)]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_cli_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert code in out


def test_module_entry_point_runs_as_subprocess(tmp_path):
    """``python -m tools.repro_lint`` works from the repository root."""
    seed_violation_tree(tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT)
    proc = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", str(tmp_path / "src"),
         "--format", "json"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 1, proc.stderr
    codes = [line.split('"code": "')[1][:5] for line in proc.stdout.splitlines()]
    assert codes == [c for c, _ in EXPECTED]
