"""Tests for tools.doc_link_check, plus the repo-wide clean gate."""

from pathlib import Path

from tools.doc_link_check import (
    check_paths,
    default_files,
    github_slug,
    heading_anchors,
    iter_links,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


# ---------------------------------------------------------------- slugs


def test_github_slug_rules():
    assert github_slug("Quickstart") == "quickstart"
    assert github_slug("Phase 1 — event preprocessing") == (
        "phase-1--event-preprocessing"
    )
    assert github_slug("RL006 — no-direct-output") == "rl006--no-direct-output"
    assert github_slug("`code` and *emphasis*") == "code-and-emphasis"
    assert github_slug("[text](target.md)") == "text"


def test_heading_anchors_dedup_and_fence_skipping():
    doc = "\n".join(
        [
            "# Title",
            "## Same",
            "## Same",
            "```",
            "# not a heading",
            "```",
            "## Same",
        ]
    )
    assert heading_anchors(doc) == {"title", "same", "same-1", "same-2"}


def test_iter_links_finds_inline_and_reference_links_outside_fences():
    doc = "\n".join(
        [
            "see [a](x.md) and ![img](pic.png \"t\")",
            "[ref]: y.md",
            "```",
            "[not](a-link.md)",
            "```",
        ]
    )
    assert list(iter_links(doc)) == [(1, "x.md"), (1, "pic.png"), (2, "y.md")]


# ---------------------------------------------------------------- checking


def write(tmp_path, name, text):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def test_check_detects_missing_target(tmp_path):
    doc = write(tmp_path, "a.md", "see [b](missing.md)\n")
    (err,) = check_paths([doc], tmp_path)
    assert err.target == "missing.md"
    assert "does not exist" in err.reason
    assert err.line == 1


def test_check_detects_bad_anchor_and_accepts_good_one(tmp_path):
    write(tmp_path, "b.md", "# Real Heading\n")
    doc = write(
        tmp_path,
        "a.md",
        "[ok](b.md#real-heading)\n[bad](b.md#no-such)\n[self](#intro)\n\n# Intro\n",
    )
    errors = check_paths([doc], tmp_path)
    assert [(e.line, e.target) for e in errors] == [(2, "b.md#no-such")]
    assert "no heading" in errors[0].reason


def test_check_detects_repository_escape(tmp_path):
    root = tmp_path / "repo"
    doc = write(root, "a.md", "[out](../outside.md)\n")
    (err,) = check_paths([doc], root)
    assert "escapes" in err.reason


def test_check_skips_external_links(tmp_path):
    doc = write(
        tmp_path,
        "a.md",
        "[w](https://example.com/x) [m](mailto:a@b.c)\n",
    )
    assert check_paths([doc], tmp_path) == []


def test_relative_links_resolve_from_the_containing_file(tmp_path):
    write(tmp_path, "TOP.md", "# Top\n")
    doc = write(tmp_path, "docs/a.md", "[up](../TOP.md#top)\n")
    assert check_paths([doc], tmp_path) == []


# ---------------------------------------------------------------- CLI


def test_main_exit_codes(tmp_path, capsys):
    good = write(tmp_path, "good.md", "# H\n[self](#h)\n")
    bad = write(tmp_path, "bad.md", "[x](gone.md)\n")
    assert main([str(good), "--root", str(tmp_path)]) == 0
    assert main([str(bad), "--root", str(tmp_path)]) == 1
    assert main([str(tmp_path / "absent.md")]) == 2
    out = capsys.readouterr()
    assert "1 broken link(s)" in out.out
    assert "no such file" in out.err


# ---------------------------------------------------------------- repo gate


def test_repo_documentation_has_no_broken_links():
    files = default_files(REPO_ROOT)
    assert files, "expected docs/*.md plus top-level Markdown"
    errors = check_paths(files, REPO_ROOT)
    assert errors == [], "\n".join(e.format() for e in errors)
