"""Pass-1 project-model tests: naming, imports, resolution, cache.

These exercise the whole-program infrastructure on synthetic module sets
(``build_project_from_sources``) and on temporary trees, independent of
any graph rule: weird import shapes must produce a *model* — degraded to
"unknown" where static analysis cannot see — and never an exception.
"""

from __future__ import annotations

import json

import pytest

from tools.repro_lint.graph import (
    ProjectModel,
    build_project_from_sources,
    content_key,
    load_cached_model,
    store_cached_model,
)
from tools.repro_lint.symbols import module_name_for


# --------------------------------------------------------------------- #
# Module naming from the filesystem.
# --------------------------------------------------------------------- #


def test_module_name_walks_packages(tmp_path):
    pkg = tmp_path / "src" / "repro" / "bgl"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "cmcs.py").write_text("")
    assert module_name_for(pkg / "cmcs.py") == "repro.bgl.cmcs"


def test_module_name_stops_without_init(tmp_path):
    # No __init__.py anywhere: the module is just its stem.
    f = tmp_path / "standalone.py"
    f.write_text("")
    assert module_name_for(f) == "standalone"


def test_package_init_named_as_package(tmp_path):
    pkg = tmp_path / "repro" / "util"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    assert module_name_for(pkg / "__init__.py") == "repro.util"


# --------------------------------------------------------------------- #
# Import-graph edge cases.
# --------------------------------------------------------------------- #


def test_cyclic_imports_build_without_crash():
    model = build_project_from_sources({
        "repro.a": "from repro.b import g\ndef f():\n    return g()\n",
        "repro.b": "from repro.a import f\ndef g():\n    return f()\n",
    })
    edges = {(e.src_module, e.dst_module) for e in model.project_import_edges()}
    assert ("repro.a", "repro.b") in edges
    assert ("repro.b", "repro.a") in edges


def test_import_as_alias_resolves_calls():
    model = build_project_from_sources({
        "repro.helpers": "def work():\n    return 1\n",
        "repro.main": (
            "import repro.helpers as h\n"
            "def run():\n"
            "    return h.work()\n"
        ),
    })
    fn = model.functions["repro.main.run"]
    assert "repro.helpers.work" in fn.resolved_callees


def test_from_import_as_alias_resolves_calls():
    model = build_project_from_sources({
        "repro.helpers": "def work():\n    return 1\n",
        "repro.main": (
            "from repro.helpers import work as w\n"
            "def run():\n"
            "    return w()\n"
        ),
    })
    assert "repro.helpers.work" in model.functions["repro.main.run"].resolved_callees


def test_relative_imports_resolve_against_package(tmp_path):
    pkg = tmp_path / "repro" / "sub"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (tmp_path / "repro" / "base.py").write_text("def f():\n    return 0\n")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "from .. import base\n"
        "from ..base import f\n"
        "def g():\n"
        "    return f()\n"
    )
    import ast

    model = ProjectModel()
    for p in [tmp_path / "repro" / "base.py", pkg / "mod.py"]:
        tree = ast.parse(p.read_text())
        from tools.repro_lint.symbols import extract_module

        model.add_module(extract_module(str(p), tree, abs_path=p))
    model.finalize()
    targets = {e.dst_module for e in model.project_import_edges()}
    assert "repro.base" in targets
    assert "repro.sub.mod.g" in model.functions
    assert "repro.base.f" in model.functions["repro.sub.mod.g"].resolved_callees


def test_dynamic_getattr_degrades_to_unknown():
    # getattr-computed call targets cannot be resolved; the model must
    # carry them as unresolved rather than crash or invent an edge.
    model = build_project_from_sources({
        "repro.dyn": (
            "import importlib\n"
            "def load(name):\n"
            "    mod = importlib.import_module(name)\n"
            "    fn = getattr(mod, 'run')\n"
            "    return fn()\n"
        ),
    })
    fn = model.functions["repro.dyn.load"]
    assert fn.resolved_callees == [] or all(
        c.startswith("repro.") for c in fn.resolved_callees
    )
    kinds = {c.kind for c in fn.calls}
    assert "dynamic" in kinds or "unknown" in kinds


def test_star_import_records_edge():
    model = build_project_from_sources({
        "repro.a": "X = 1\n",
        "repro.b": "from repro.a import *\n",
    })
    edges = {(e.src_module, e.dst_module) for e in model.project_import_edges()}
    assert ("repro.b", "repro.a") in edges


def test_multi_alias_import_is_one_edge():
    model = build_project_from_sources({
        "repro.a": "x = 1\ny = 2\nz = 3\n",
        "repro.b": "from repro.a import x, y, z\n",
    })
    edges = [e for e in model.project_import_edges() if e.src_module == "repro.b"]
    assert len(edges) == 1


def test_reexport_chain_resolves():
    model = build_project_from_sources({
        "repro.impl": "def real():\n    return 1\n",
        "repro.api": "from repro.impl import real\n",
        "repro.user": (
            "from repro.api import real\n"
            "def go():\n"
            "    return real()\n"
        ),
    })
    assert "repro.impl.real" in model.functions["repro.user.go"].resolved_callees


def test_method_call_through_self_resolves():
    model = build_project_from_sources({
        "repro.cls": (
            "class Thing:\n"
            "    def helper(self):\n"
            "        return 1\n"
            "    def run(self):\n"
            "        return self.helper()\n"
        ),
    })
    run = model.functions["repro.cls.Thing.run"]
    assert "repro.cls.Thing.helper" in run.resolved_callees


# --------------------------------------------------------------------- #
# Reachability helpers.
# --------------------------------------------------------------------- #


@pytest.fixture
def chain_model():
    return build_project_from_sources({
        "repro.chain": (
            "def c():\n    return 1\n"
            "def b():\n    return c()\n"
            "def a():\n    return b()\n"
        ),
    })


def test_reverse_reachable_witness_path(chain_model):
    reachers = chain_model.reverse_reachable({"repro.chain.c"})
    assert reachers["repro.chain.a"] == (
        "repro.chain.a", "repro.chain.b", "repro.chain.c",
    )


def test_forward_reach_through_restriction(chain_model):
    # Forbid traversing b: a still *reaches* b (terminal) but not c.
    reach = chain_model.forward_reach(
        "repro.chain.a", through={"repro.chain.a"}
    )
    assert "repro.chain.b" in reach
    assert "repro.chain.c" not in reach


# --------------------------------------------------------------------- #
# Serialization and the content-keyed cache.
# --------------------------------------------------------------------- #


def test_model_json_round_trip(chain_model):
    data = chain_model.to_dict()
    json.dumps(data)  # must be pure data
    clone = ProjectModel.from_dict(data)
    assert set(clone.functions) == set(chain_model.functions)
    assert (
        clone.functions["repro.chain.a"].resolved_callees
        == chain_model.functions["repro.chain.a"].resolved_callees
    )
    assert clone.stats() == chain_model.stats()


def test_cache_store_and_load(tmp_path, chain_model):
    key = content_key([("repro/chain.py", "source-v1")], salt="s")
    assert load_cached_model(tmp_path, key) is None
    store_cached_model(tmp_path, key, chain_model)
    loaded = load_cached_model(tmp_path, key)
    assert loaded is not None
    assert loaded.stats() == chain_model.stats()


def test_cache_key_changes_with_content_and_salt():
    base = content_key([("a.py", "x = 1")], salt="s")
    assert content_key([("a.py", "x = 2")], salt="s") != base
    assert content_key([("a.py", "x = 1")], salt="t") != base


def test_corrupt_cache_returns_none(tmp_path, chain_model):
    key = content_key([("repro/chain.py", "v1")], salt="s")
    store_cached_model(tmp_path, key, chain_model)
    for f in tmp_path.iterdir():
        f.write_text("{not json", "utf-8")
    assert load_cached_model(tmp_path, key) is None
