"""Tests for repro.preprocess.pipeline."""

import numpy as np

from repro.preprocess.pipeline import (
    PreprocessPipeline,
    job_impacting_filter,
)
from repro.ras.events import NO_JOB
from repro.ras.fields import Severity
from repro.ras.store import EventStore, UNCLASSIFIED
from tests.conftest import make_event


def test_run_classifies_everything(tiny_store):
    result = PreprocessPipeline().run(tiny_store)
    assert not np.any(result.events.subcat_ids == UNCLASSIFIED)


def test_run_counts_consistent(small_anl_log):
    result = PreprocessPipeline().run(small_anl_log.raw)
    assert result.raw_records == len(small_anl_log.raw)
    assert result.unique_events == len(result.events)
    assert result.unique_events <= result.raw_records
    assert 0.0 <= result.overall_compression < 1.0
    # Temporal output feeds spatial input.
    assert result.temporal_stats.output_records == result.spatial_stats.input_records


def test_run_substantial_compression(small_anl_log):
    """The raw log is massively redundant; Phase 1 must remove most of it."""
    result = PreprocessPipeline().run(small_anl_log.raw)
    assert result.overall_compression > 0.9


def test_event_filter_hook():
    events = [
        make_event(time=100, severity=Severity.FATAL, job_id=NO_JOB,
                   entry="uncorrectable torus error: retransmission limit exceeded"),
        make_event(time=5000, severity=Severity.FATAL, job_id=7,
                   entry="uncorrectable torus error: retransmission limit exceeded"),
        make_event(time=9000, severity=Severity.INFO, job_id=NO_JOB,
                   entry="timer interrupt rollover serviced"),
    ]
    store = EventStore.from_events(events)
    result = PreprocessPipeline(event_filter=job_impacting_filter).run(store)
    # The job-less fatal is filtered; the non-fatal and job fatal survive.
    assert result.filtered_out == 1
    fatal = result.events.fatal_events()
    assert len(fatal) == 1
    assert fatal[0].job_id == 7


def test_no_filter_by_default(tiny_store):
    result = PreprocessPipeline().run(tiny_store)
    assert result.filtered_out == 0


def test_empty_input():
    result = PreprocessPipeline().run(EventStore.empty())
    assert result.unique_events == 0
    assert result.overall_compression == 0.0


def test_custom_threshold_changes_output(small_anl_log):
    tight = PreprocessPipeline(threshold=30.0).run(small_anl_log.raw)
    loose = PreprocessPipeline(threshold=300.0).run(small_anl_log.raw)
    # A tighter threshold merges less.
    assert tight.unique_events >= loose.unique_events
