"""Streaming (chunked) Phase-1 equivalence against the batch reference.

The incremental temporal compressor and the streaming pipeline must be
*bit-identical* to their batch counterparts for every chunk size — chunking
is an execution strategy, never a semantics change.
"""

import numpy as np
import pytest

from repro.cache import store_fingerprint
from repro.preprocess.compression import (
    IncrementalTemporalCompressor,
    temporal_compress,
    temporal_compress_chunked,
)
from repro.preprocess.pipeline import PreprocessPipeline, job_impacting_filter


def assert_stats_equal(a, b):
    """CompressionStats equality (the severity tally is an ndarray)."""
    assert a.input_records == b.input_records
    assert a.output_records == b.output_records
    assert a.clusters_merged == b.clusters_merged
    np.testing.assert_array_equal(a.removed_by_severity, b.removed_by_severity)


@pytest.mark.parametrize("chunk_events", [97, 5_000, 1_000_000])
@pytest.mark.parametrize("key_mode", ["job_location", "job_location_entry"])
def test_chunked_temporal_compression_bit_identical(
    small_anl_log, chunk_events, key_mode
):
    raw = small_anl_log.raw
    batch_store, batch_stats = temporal_compress(raw, key_mode=key_mode)
    chunk_store, chunk_stats = temporal_compress_chunked(
        raw, key_mode=key_mode, chunk_events=chunk_events
    )
    assert store_fingerprint(chunk_store) == store_fingerprint(batch_store)
    assert_stats_equal(chunk_stats, batch_stats)


def test_incremental_compressor_empty_input():
    comp = IncrementalTemporalCompressor(300.0)
    rep_idx, stats = comp.finish()
    assert len(rep_idx) == 0
    assert stats.input_records == 0
    assert stats.output_records == 0


def test_streaming_pipeline_matches_batch(small_anl_log):
    raw = small_anl_log.raw
    batch = PreprocessPipeline().run(raw, chunk_events=0)
    streamed = PreprocessPipeline().run(raw, chunk_events=7_777)
    assert store_fingerprint(streamed.events) == store_fingerprint(batch.events)
    assert_stats_equal(streamed.temporal_stats, batch.temporal_stats)
    assert_stats_equal(streamed.spatial_stats, batch.spatial_stats)
    assert streamed.filtered_out == batch.filtered_out


def test_streaming_pipeline_matches_batch_with_filter(small_anl_log):
    raw = small_anl_log.raw
    batch = PreprocessPipeline(event_filter=job_impacting_filter).run(
        raw, chunk_events=0
    )
    streamed = PreprocessPipeline(event_filter=job_impacting_filter).run(
        raw, chunk_events=4_096
    )
    assert store_fingerprint(streamed.events) == store_fingerprint(batch.events)
    assert streamed.filtered_out == batch.filtered_out


def test_columnar_input_streams_automatically(columnar_raw, small_anl_log):
    """chunk_events=None auto-streams on the columnar backend, same result."""
    batch = PreprocessPipeline().run(small_anl_log.raw)
    auto = PreprocessPipeline().run(columnar_raw)
    assert store_fingerprint(auto.events) == store_fingerprint(batch.events)
    assert_stats_equal(auto.temporal_stats, batch.temporal_stats)


def test_push_rejects_nothing_and_orders_reps():
    """Representative indices come back globally sorted (store order)."""
    import tests.conftest as c

    events = [
        c.make_event(time=t, location="R01-M0-N00-C00", job_id=5)
        for t in (100, 150, 190, 5000, 5100)
    ]
    from repro.ras.store import EventStore

    store = EventStore.from_events(events)
    comp = IncrementalTemporalCompressor(300.0)
    for chunk in store.iter_chunks(2):
        comp.push(chunk)
    rep_idx, stats = comp.finish()
    assert list(rep_idx) == sorted(rep_idx)
    assert stats.input_records == 5
    # 100/150/190 coalesce; 5000/5100 coalesce -> 2 representatives.
    assert stats.output_records == 2
