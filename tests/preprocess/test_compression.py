"""Tests for repro.preprocess.compression (Phase-1 steps 2-3)."""

import pytest

from repro.preprocess.compression import (
    DEFAULT_THRESHOLD,
    spatial_compress,
    temporal_compress,
)
from repro.ras.fields import Facility, Severity
from repro.ras.store import EventStore
from tests.conftest import make_event


def _store(*events):
    return EventStore.from_events(events)


def test_default_threshold_is_papers():
    assert DEFAULT_THRESHOLD == 300


def test_temporal_merges_same_job_location_within_threshold():
    s = _store(
        make_event(time=100, job_id=1, location="R00-M0-N00-C00"),
        make_event(time=200, job_id=1, location="R00-M0-N00-C00"),
        make_event(time=350, job_id=1, location="R00-M0-N00-C00"),
    )
    out, stats = temporal_compress(s)
    # Gap-based clustering: 100-200-350 chain all within 300 s gaps -> one.
    assert len(out) == 1
    assert stats.removed == 2


def test_temporal_respects_gap_not_cluster_span():
    # Events 100, 350, 600: every consecutive gap <= 300 -> single cluster
    # even though the span is 500 s (gap-based semantics).
    s = _store(
        *[make_event(time=t, job_id=1, location="R00") for t in (100, 350, 600)]
    )
    out, _ = temporal_compress(s)
    assert len(out) == 1


def test_temporal_splits_on_large_gap():
    s = _store(
        make_event(time=100, job_id=1, location="R00"),
        make_event(time=500, job_id=1, location="R00"),
    )
    out, _ = temporal_compress(s)
    assert len(out) == 2


def test_temporal_distinguishes_jobs_and_locations():
    s = _store(
        make_event(time=100, job_id=1, location="R00"),
        make_event(time=110, job_id=2, location="R00"),
        make_event(time=120, job_id=1, location="R01"),
    )
    out, _ = temporal_compress(s)
    assert len(out) == 3


def test_temporal_keeps_max_severity_representative():
    s = _store(
        make_event(time=100, job_id=1, location="R00", severity=Severity.INFO,
                   entry="info msg"),
        make_event(time=150, job_id=1, location="R00", severity=Severity.FATAL,
                   entry="load program failure: invalid or missing program image",
                   facility=Facility.APP),
        make_event(time=200, job_id=1, location="R00", severity=Severity.INFO,
                   entry="info msg"),
    )
    out, stats = temporal_compress(s)
    assert len(out) == 1
    assert out[0].severity is Severity.FATAL
    assert out[0].time == 150  # earliest max-severity record keeps its time
    # Removed records were the two INFO ones.
    assert stats.removed_by_severity[int(Severity.INFO)] == 2


def test_temporal_key_mode_entry_preserves_distinct_messages():
    s = _store(
        make_event(time=100, job_id=1, location="R00", entry="msg a"),
        make_event(time=150, job_id=1, location="R00", entry="msg b"),
    )
    literal, _ = temporal_compress(s, key_mode="job_location")
    conservative, _ = temporal_compress(s, key_mode="job_location_entry")
    assert len(literal) == 1
    assert len(conservative) == 2


def test_temporal_invalid_key_mode(tiny_store):
    with pytest.raises(ValueError, match="key_mode"):
        temporal_compress(tiny_store, key_mode="bogus")


def test_spatial_merges_same_entry_job_across_locations():
    s = _store(
        make_event(time=100, job_id=1, location="R00-M0-N00-C00", entry="x"),
        make_event(time=150, job_id=1, location="R00-M0-N00-C01", entry="x"),
        make_event(time=200, job_id=1, location="R00-M1-N03-C05", entry="x"),
    )
    out, stats = spatial_compress(s)
    assert len(out) == 1
    assert stats.compression_ratio == pytest.approx(2 / 3)


def test_spatial_keeps_different_entries():
    s = _store(
        make_event(time=100, job_id=1, location="R00", entry="x"),
        make_event(time=150, job_id=1, location="R01", entry="y"),
    )
    out, _ = spatial_compress(s)
    assert len(out) == 2


def test_spatial_keeps_different_jobs():
    s = _store(
        make_event(time=100, job_id=1, location="R00", entry="x"),
        make_event(time=150, job_id=2, location="R01", entry="x"),
    )
    out, _ = spatial_compress(s)
    assert len(out) == 2


def test_compress_empty_store():
    out, stats = temporal_compress(EventStore.empty())
    assert len(out) == 0
    assert stats.compression_ratio == 0.0


def test_compress_single_record(tiny_store):
    one = tiny_store.select(slice(0, 1))
    out, stats = temporal_compress(one)
    assert len(out) == 1
    assert stats.removed == 0


def test_compression_output_time_sorted(tiny_store):
    out, _ = temporal_compress(tiny_store)
    assert out.is_time_sorted()
    out2, _ = spatial_compress(out)
    assert out2.is_time_sorted()


def test_compression_idempotent(tiny_store):
    once, _ = temporal_compress(tiny_store)
    twice, stats = temporal_compress(once)
    assert len(twice) == len(once)
    assert stats.removed == 0


def test_threshold_validation(tiny_store):
    with pytest.raises(ValueError):
        temporal_compress(tiny_store, threshold=0)


def test_cmcs_roundtrip_recovers_unique_fatals(small_anl_log):
    """Compression must recover the planted fatal events (count-wise)."""
    from repro.core.pipeline import ThreePhasePredictor

    result = ThreePhasePredictor().preprocess(small_anl_log.raw)
    planted = sum(small_anl_log.ground_truth_fatal_counts().values())
    recovered = len(result.events.fatal_events())
    assert recovered == pytest.approx(planted, rel=0.05)
