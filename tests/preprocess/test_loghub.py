"""Tests for repro.preprocess.loghub (public-dump compatibility)."""

import numpy as np
import pytest

from repro.preprocess.loghub import (
    ALERT_CATEGORIES,
    NON_ALERT_TAG,
    alert_main_category,
    diagnose_store,
    synthesize_job_ids,
)
from repro.ras.store import EventStore
from repro.taxonomy.categories import MainCategory
from tests.conftest import make_event


def test_alert_categories_well_formed():
    for tag, (desc, cat) in ALERT_CATEGORIES.items():
        assert tag.upper() == tag
        assert desc
        assert isinstance(cat, MainCategory)
    assert NON_ALERT_TAG == "-"


def test_alert_main_category_lookup():
    assert alert_main_category("KERNSOCK") is MainCategory.IOSTREAM
    assert alert_main_category("appsev") is MainCategory.APPLICATION
    assert alert_main_category("-") is None
    assert alert_main_category("UNKNOWN") is None


def test_diagnose_store_on_generated_log(small_anl_log):
    d = diagnose_store(small_anl_log.raw)
    assert d["records"] == len(small_anl_log.raw)
    assert d["classified_fraction"] == pytest.approx(1.0)
    assert d["has_job_ids"]
    assert d["fatal_records"] > 0
    assert d["span_days"] > 1


def test_diagnose_store_unknown_messages():
    store = EventStore.from_events(
        [make_event(time=i, entry=f"opaque {i}") for i in range(10)]
    )
    d = diagnose_store(store)
    assert d["classified_fraction"] == 0.0
    assert not d["has_job_ids"] or True  # job 17 from make_event default


def test_diagnose_empty():
    d = diagnose_store(EventStore.empty())
    assert d["records"] == 0
    assert d["classified_fraction"] == 0.0


def test_synthesize_job_ids_epochs():
    # Three activity epochs separated by > 6 h quiet gaps.
    events = (
        [make_event(time=t, job_id=-1) for t in (0, 100, 200)]
        + [make_event(time=t, job_id=-1) for t in (50_000, 50_100)]
        + [make_event(time=100_000, job_id=-1)]
    )
    store = synthesize_job_ids(EventStore.from_events(events))
    jobs = store.jobs
    assert list(jobs[:3]) == [1, 1, 1]
    assert list(jobs[3:5]) == [2, 2]
    assert jobs[5] == 3
    assert (jobs >= 1).all()


def test_synthesize_job_ids_preserves_everything_else(small_anl_log):
    store = synthesize_job_ids(small_anl_log.raw)
    assert len(store) == len(small_anl_log.raw)
    assert np.array_equal(store.times, small_anl_log.raw.times)
    assert np.array_equal(store.entry_ids, small_anl_log.raw.entry_ids)


def test_synthesize_job_ids_validation(small_anl_log):
    with pytest.raises(ValueError):
        synthesize_job_ids(small_anl_log.raw, idle_gap=0)
    assert len(synthesize_job_ids(EventStore.empty())) == 0


def test_jobless_dump_pipeline_end_to_end(small_anl_log, tmp_path):
    """A Loghub-style dump (no job ids) still flows through the pipeline
    after surrogate-id synthesis."""
    from repro.core.pipeline import ThreePhasePredictor
    from repro.ras.logfile import LogDialect, read_log, write_log

    path = tmp_path / "dump.log"
    write_log(small_anl_log.raw.to_events()[:3000], path,
              dialect=LogDialect.LOGHUB)
    dump = read_log(path)
    assert not np.any(dump.jobs >= 0)  # the dump stripped job ids

    with_jobs = synthesize_job_ids(dump, idle_gap=1800)
    result = ThreePhasePredictor().preprocess(with_jobs)
    assert 0 < result.unique_events < len(dump)
