"""Tests for repro.preprocess.summary."""


from repro.preprocess.summary import (
    category_fatal_counts,
    format_table4,
    log_summary,
    severity_breakdown,
)
from repro.ras.store import EventStore
from repro.taxonomy.categories import CATEGORY_ORDER, MainCategory
from repro.taxonomy.classifier import TaxonomyClassifier


def test_log_summary_fields(small_anl_log):
    s = log_summary(small_anl_log.raw, name="ANL")
    assert s["name"] == "ANL"
    assert s["records"] == len(small_anl_log.raw)
    assert s["span_days"] > 0
    assert s["approx_size_mb"] > 0


def test_log_summary_empty():
    s = log_summary(EventStore.empty())
    assert s["records"] == 0
    assert s["start"] == "-"


def test_severity_breakdown(tiny_store):
    b = severity_breakdown(tiny_store)
    assert b["INFO"] == 3
    assert b["FATAL"] == 1
    assert sum(b.values()) == len(tiny_store)


def test_category_fatal_counts(anl_events):
    counts = category_fatal_counts(anl_events)
    assert set(counts) == set(CATEGORY_ORDER)
    total = sum(counts.values())
    assert total == len(anl_events.fatal_events())
    # Iostream is the dominant fatal category in the ANL profile (Table 4).
    assert counts[MainCategory.IOSTREAM] == max(counts.values())


def test_category_fatal_counts_empty():
    counts = category_fatal_counts(
        TaxonomyClassifier().classify_store(EventStore.empty())
    )
    assert all(v == 0 for v in counts.values())


def test_format_table4_layout(anl_events, sdsc_events):
    table = format_table4(
        {
            "ANL": category_fatal_counts(anl_events),
            "SDSC": category_fatal_counts(sdsc_events),
        }
    )
    lines = table.splitlines()
    assert "Main Category" in lines[0]
    assert "ANL" in lines[0] and "SDSC" in lines[0]
    assert lines[-1].startswith("TOTAL")
    # One row per category between header and total.
    assert sum(1 for ln in lines if any(
        ln.startswith(c.value.capitalize()) for c in CATEGORY_ORDER
    )) == 8
