"""Tests for the on-disk columnar store format (repro.ras.columnar)."""

import json

import numpy as np
import pytest

from repro.cache import store_fingerprint
from repro.ras.columnar import (
    COLUMNS_DIR,
    MANIFEST_NAME,
    ColumnarBackend,
    ColumnarWriter,
    StoreDirError,
    is_columnar_dir,
    open_store,
    write_store,
)
from repro.ras.events import RasEvent
from repro.ras.fields import Facility, Severity
from repro.ras.store import EventStore
from tests.conftest import make_event


def test_round_trip_preserves_everything(small_anl_log, tmp_path):
    raw = small_anl_log.raw
    path = write_store(raw, tmp_path / "store", chunk_events=10_000)
    reopened = open_store(path)
    assert reopened.backend_kind == "columnar"
    assert len(reopened) == len(raw)
    assert store_fingerprint(reopened) == store_fingerprint(raw)
    assert reopened.storage_path == str(path)


def test_open_missing_directory_raises(tmp_path):
    with pytest.raises(StoreDirError, match="manifest"):
        ColumnarBackend(tmp_path / "nope")
    assert not is_columnar_dir(tmp_path / "nope")


def test_corrupt_manifest_reads_as_absence(small_anl_log, tmp_path):
    path = write_store(small_anl_log.raw, tmp_path / "store")
    (path / MANIFEST_NAME).write_text("{ not json")
    with pytest.raises(StoreDirError):
        open_store(path)
    # A resuming writer treats the corrupt store as absent and starts fresh.
    with ColumnarWriter(path, resume=True) as writer:
        assert writer.rows == 0
    assert len(open_store(path)) == 0


def test_crash_truncation_trailing_bytes_ignored(small_anl_log, tmp_path):
    """Bytes appended after the last manifest commit are never mapped."""
    raw = small_anl_log.raw
    path = write_store(raw, tmp_path / "store")
    before = store_fingerprint(open_store(path))
    # Simulate a crash mid-append: column bytes written, manifest not yet
    # replaced.
    with open(path / COLUMNS_DIR / "times.bin", "ab") as fh:
        fh.write(np.arange(7, dtype=np.int64).tobytes())
    reopened = open_store(path)
    assert len(reopened) == len(raw)
    assert store_fingerprint(reopened) == before
    # Resume drops the uncommitted tail before appending more.
    with ColumnarWriter(path, resume=True) as writer:
        assert writer.rows == len(raw)
        writer.append_events([make_event(time=2_000_000_000)])
    assert len(open_store(path)) == len(raw) + 1


def test_shorter_column_file_than_manifest_is_an_error(
    small_anl_log, tmp_path
):
    path = write_store(small_anl_log.raw, tmp_path / "store")
    times = path / COLUMNS_DIR / "times.bin"
    with open(times, "ab") as fh:
        fh.truncate(times.stat().st_size - 8)
    with pytest.raises(StoreDirError, match="holds"):
        open_store(path)


def test_resume_appends_across_writer_lifetimes(small_anl_log, tmp_path):
    raw = small_anl_log.raw
    half = len(raw) // 2
    path = tmp_path / "store"
    with ColumnarWriter(path) as writer:
        writer.append(raw.select(slice(0, half)))
    with ColumnarWriter(path, resume=True) as writer:
        assert writer.rows == half
        writer.append(raw.select(slice(half, len(raw))))
    reopened = open_store(path)
    assert store_fingerprint(reopened) == store_fingerprint(raw)


def test_append_events_unsorted_sorts_on_open(tmp_path):
    events = [
        make_event(time=t, entry=f"entry {t % 3}", severity=Severity.ERROR)
        for t in (50, 10, 30, 20, 40)
    ]
    path = tmp_path / "store"
    with ColumnarWriter(path) as writer:
        writer.append_events(events)
    backend = ColumnarBackend(path)
    assert not backend.time_sorted
    store = open_store(path)
    # Sorting on open materializes (the mmap cannot be reordered in place).
    assert store.backend_kind == "memory"
    assert list(store.times) == [10, 20, 30, 40, 50]
    assert store_fingerprint(store) == store_fingerprint(
        EventStore.from_events(events)
    )


def test_empty_store_round_trips(tmp_path):
    path = tmp_path / "store"
    with ColumnarWriter(path):
        pass
    assert is_columnar_dir(path)
    store = open_store(path)
    assert len(store) == 0
    assert store.time_window(0, 10**12).fatal_mask().sum() == 0


def test_mapped_reads_are_zero_copy_views(small_anl_log, tmp_path):
    path = write_store(small_anl_log.raw, tmp_path / "store")
    store = open_store(path)
    assert isinstance(store.times, np.memmap)
    window = store.time_window(int(store.times[0]), int(store.times[-1]) + 1)
    # Contiguous windows are views into the map, not copies.
    assert window.times.base is not None
    assert not window.times.flags.writeable
    with pytest.raises(ValueError):
        window.times[0] = 0  # type: ignore[index]


def test_segments_and_manifest_shape(small_anl_log, tmp_path):
    raw = small_anl_log.raw
    path = write_store(raw, tmp_path / "store", chunk_events=20_000)
    doc = json.loads((path / MANIFEST_NAME).read_text())
    assert doc["rows"] == len(raw)
    assert doc["sorted"] is True
    assert sum(seg["rows"] for seg in doc["segments"]) == len(raw)
    backend = ColumnarBackend(path)
    assert backend.segments == [seg["rows"] for seg in doc["segments"]]
    assert backend.disk_bytes() > 0


def test_writer_rejects_use_after_close(tmp_path):
    writer = ColumnarWriter(tmp_path / "store")
    writer.close()
    with pytest.raises(StoreDirError, match="closed"):
        writer.append_events([make_event()])


def test_append_events_interns_subcategories(tmp_path):
    events = [
        RasEvent(
            time=100 + i,
            location=f"R0{i}-M0-N00-C00",
            facility=Facility.KERNEL,
            severity=Severity.FATAL,
            entry_data="data cache parity error",
            job_id=i,
            subcategory="memory" if i % 2 else None,
        )
        for i in range(4)
    ]
    path = tmp_path / "store"
    with ColumnarWriter(path) as writer:
        writer.append_events(events)
    store = open_store(path)
    assert store.table("subcats").strings == ["memory"]
    assert list(store.subcat_ids) == [-1, 0, -1, 0]
