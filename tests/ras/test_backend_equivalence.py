"""Cross-backend equivalence: memory vs columnar EventStore behavior.

The storage API's core contract is that *every* public ``EventStore``
operation — and the content fingerprint the artifact cache keys on — is
bit-identical whether the columns live in RAM or in memory-mapped segment
files.  ``columnar_raw`` (conftest) is the small ANL log reopened from disk;
``small_anl_log.raw`` is the same log memory-backed.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.cache import store_fingerprint
from repro.ras.store import EventStore
from tests.conftest import make_event


@pytest.fixture(scope="module")
def memory_raw(small_anl_log) -> EventStore:
    # materialized() pins the memory backend even when the ambient
    # REPRO_STORE_BACKEND default is columnar.
    return small_anl_log.raw.materialized()


def _assert_same_store(a: EventStore, b: EventStore) -> None:
    assert len(a) == len(b)
    for name in (
        "times", "severities", "facilities", "jobs",
        "location_ids", "entry_ids", "subcat_ids",
    ):
        np.testing.assert_array_equal(a.column(name), b.column(name))
    for table in ("locations", "entries", "subcats"):
        assert a.table(table).strings == b.table(table).strings


def test_fingerprint_identical_across_backends(memory_raw, columnar_raw):
    assert memory_raw.backend_kind == "memory"
    assert columnar_raw.backend_kind == "columnar"
    assert store_fingerprint(memory_raw) == store_fingerprint(columnar_raw)


def test_columns_and_tables_identical(memory_raw, columnar_raw):
    _assert_same_store(memory_raw, columnar_raw)


def test_time_window_identical(memory_raw, columnar_raw):
    t0 = int(memory_raw.times[len(memory_raw) // 4])
    t1 = int(memory_raw.times[3 * len(memory_raw) // 4])
    _assert_same_store(
        memory_raw.time_window(t0, t1), columnar_raw.time_window(t0, t1)
    )


def test_select_mask_and_index_identical(memory_raw, columnar_raw):
    mask = memory_raw.severities >= 4
    _assert_same_store(memory_raw.select(mask), columnar_raw.select(mask))
    idx = np.arange(0, len(memory_raw), 97)
    _assert_same_store(memory_raw.select(idx), columnar_raw.select(idx))


def test_select_empty_index_array(memory_raw, columnar_raw):
    empty = np.array([], dtype=np.int64)
    for store in (memory_raw, columnar_raw):
        derived = store.select(empty)
        assert len(derived) == 0
        assert derived.times.dtype == np.int64
        assert derived.table("entries").strings == store.table("entries").strings


def test_select_unsorted_index_array(memory_raw, columnar_raw):
    """select() takes indices as given — callers control the order."""
    idx = np.array([40, 3, 3, 17], dtype=np.int64)
    a = memory_raw.select(idx)
    b = columnar_raw.select(idx)
    np.testing.assert_array_equal(a.times, memory_raw.times[idx])
    _assert_same_store(a, b)


def test_getitem_slice_and_scalar_identical(memory_raw, columnar_raw):
    _assert_same_store(memory_raw[10:200], columnar_raw[10:200])
    assert memory_raw[42] == columnar_raw[42]
    _assert_same_store(memory_raw[::5], columnar_raw[::5])


def test_iter_chunks_cover_store_in_order(memory_raw, columnar_raw):
    for store in (memory_raw, columnar_raw):
        chunks = list(store.iter_chunks(10_000))
        assert sum(len(c) for c in chunks) == len(store)
        np.testing.assert_array_equal(
            np.concatenate([np.asarray(c.times) for c in chunks]),
            np.asarray(store.times),
        )


def test_fatal_and_derived_queries_identical(memory_raw, columnar_raw):
    np.testing.assert_array_equal(
        memory_raw.fatal_mask(), columnar_raw.fatal_mask()
    )
    _assert_same_store(
        memory_raw.fatal_events(), columnar_raw.fatal_events()
    )
    _assert_same_store(
        memory_raw.time_shifted(3600), columnar_raw.time_shifted(3600)
    )


def test_to_events_identical(memory_raw, columnar_raw):
    head_a = [memory_raw[i] for i in range(25)]
    head_b = [columnar_raw[i] for i in range(25)]
    assert head_a == head_b


def test_concat_remaps_intern_tables(columnar_raw):
    """concat() across stores with different tables keeps strings aligned."""
    other = EventStore.from_events(
        [
            make_event(
                time=int(columnar_raw.times[-1]) + 10 + i,
                location=f"R77-M1-N0{i}-C00",
                entry=f"novel entry {i}",
            )
            for i in range(3)
        ]
    )
    merged = columnar_raw.concat(other)
    assert len(merged) == len(columnar_raw) + 3
    # Every merged row decodes to the same strings its source row had.
    assert merged[len(merged) - 1].entry_data == "novel entry 2"
    assert merged[0] == columnar_raw[0]
    # Novel strings were appended, shared ones not duplicated.
    entries = merged.table("entries").strings
    assert entries[: len(columnar_raw.table("entries").strings)] == (
        columnar_raw.table("entries").strings
    )
    assert "novel entry 0" in entries


def test_columns_are_read_only_on_both_backends(memory_raw, columnar_raw):
    for store in (memory_raw, columnar_raw):
        with pytest.raises(ValueError):
            store.times[0] = 0  # type: ignore[index]
        assert not store.severities.flags.writeable


def test_column_rebind_shim_warns_and_materializes(columnar_raw):
    clone = columnar_raw.select(np.arange(len(columnar_raw)))
    shifted = np.asarray(clone.times) + 1
    with pytest.deprecated_call():
        clone.times = shifted
    np.testing.assert_array_equal(np.asarray(clone.times), shifted)
    assert clone.backend_kind == "memory"  # mutation leaves the mmap behind


def test_columnar_store_pickles_by_path(columnar_raw):
    """Whole-store pickling ships the directory path, not the bytes."""
    blob = pickle.dumps(columnar_raw)
    assert len(blob) < 4096
    clone = pickle.loads(blob)
    assert clone.backend_kind == "columnar"
    assert store_fingerprint(clone) == store_fingerprint(columnar_raw)


def test_columnar_slice_pickles_with_data(columnar_raw):
    """Derived (sliced) stores are memory-backed and pickle their arrays."""
    window = columnar_raw[100:300]
    clone = pickle.loads(pickle.dumps(window))
    _assert_same_store(window, clone)


def test_materialized_detaches_from_disk(columnar_raw):
    mat = columnar_raw.materialized()
    assert mat.backend_kind == "memory"
    assert mat.storage_path is None
    assert store_fingerprint(mat) == store_fingerprint(columnar_raw)


def test_no_spurious_deprecation_warnings_on_reads(columnar_raw):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        _ = columnar_raw.times[:10]
        _ = columnar_raw.fatal_mask()
        _ = len(columnar_raw.time_window(0, 10**11))
