"""Tests for repro.ras.store.EventStore."""

import numpy as np
import pytest

from repro.ras.events import RasEvent
from repro.ras.fields import Facility, Severity
from repro.ras.store import UNCLASSIFIED, EventStore
from tests.conftest import make_event


def test_empty_store():
    s = EventStore.empty()
    assert len(s) == 0
    assert s.is_time_sorted()
    assert s.severity_counts()[Severity.INFO] == 0
    assert s.span_seconds() == 0


def test_from_events_sorts_by_time():
    events = [make_event(time=t) for t in (50, 10, 30)]
    s = EventStore.from_events(events)
    assert list(s.times) == [10, 30, 50]
    assert s.is_time_sorted()


def test_roundtrip_event_objects(tiny_store):
    events = tiny_store.to_events()
    again = EventStore.from_events(events)
    assert again.to_events() == events


def test_getitem_int_returns_event(tiny_store):
    ev = tiny_store[3]
    assert isinstance(ev, RasEvent)
    assert ev.severity is Severity.FATAL


def test_getitem_slice_returns_store(tiny_store):
    sub = tiny_store[1:3]
    assert isinstance(sub, EventStore)
    assert len(sub) == 2


def test_select_boolean_mask(tiny_store):
    mask = tiny_store.fatal_mask()
    fatal = tiny_store.select(mask)
    assert len(fatal) == 1
    assert fatal[0].severity is Severity.FATAL


def test_select_bad_mask_shape(tiny_store):
    with pytest.raises(ValueError, match="mask"):
        tiny_store.select(np.array([True, False]))


def test_select_index_array(tiny_store):
    sub = tiny_store.select(np.array([0, 4]))
    assert list(sub.times) == [100, 420]


def test_fatal_and_nonfatal_partition(tiny_store):
    assert len(tiny_store.fatal_events()) + len(tiny_store.nonfatal_events()) == len(
        tiny_store
    )


def test_time_window_half_open(tiny_store):
    w = tiny_store.time_window(100, 300)
    assert list(w.times) == [100, 150, 200]


def test_severity_counts(tiny_store):
    counts = tiny_store.severity_counts()
    assert counts[Severity.INFO] == 3
    assert counts[Severity.FATAL] == 1
    assert counts[Severity.WARNING] == 1


def test_intern_tables_shared_by_selection(tiny_store):
    sub = tiny_store.select(tiny_store.fatal_mask())
    assert sub.location_table is tiny_store.location_table


def test_entry_interning(tiny_store):
    # Three "alpha msg" rows share one entry id.
    ids = tiny_store.entry_ids[:3]
    assert len(set(ids.tolist())) == 1


def test_concat_remaps_intern_ids():
    a = EventStore.from_events([make_event(time=1, entry="one", location="R00")])
    b = EventStore.from_events([make_event(time=2, entry="two", location="R01")])
    merged = a.concat(b)
    assert len(merged) == 2
    assert merged.entry_of(0) == "one"
    assert merged.entry_of(1) == "two"
    assert merged.is_time_sorted()


def test_concat_with_empty():
    a = EventStore.from_events([make_event(time=1)])
    merged = a.concat(EventStore.empty())
    assert len(merged) == 1


def test_concat_preserves_subcategories():
    a = EventStore.from_events(
        [make_event(time=1).with_subcategory("timerInterruptInfo")]
    )
    b = EventStore.from_events(
        [make_event(time=2).with_subcategory("dmaError")]
    )
    merged = a.concat(b)
    assert merged.subcat_of(0) == "timerInterruptInfo"
    assert merged.subcat_of(1) == "dmaError"


def test_with_subcat_ids_validates_shape(tiny_store):
    with pytest.raises(ValueError):
        tiny_store.with_subcat_ids(np.zeros(2, dtype=np.int32), ["a"])


def test_with_subcat_ids_replaces_table(tiny_store):
    ids = np.zeros(len(tiny_store), dtype=np.int32)
    labeled = tiny_store.with_subcat_ids(ids, ["onlyLabel"])
    assert labeled.subcat_of(0) == "onlyLabel"
    assert labeled.subcat_counts() == {"onlyLabel": len(tiny_store)}


def test_unclassified_rows_skipped_in_counts(tiny_store):
    assert tiny_store.subcat_counts() == {}
    assert int(tiny_store.subcat_ids[0]) == UNCLASSIFIED


def test_span_seconds(tiny_store):
    assert tiny_store.span_seconds() == 320


def test_iteration_yields_events(tiny_store):
    assert sum(1 for _ in tiny_store) == len(tiny_store)


def test_event_at_fields(tiny_store):
    ev = tiny_store.event_at(4)
    assert ev.location == "R00-M0-S"
    assert ev.facility is Facility.MONITOR
    assert ev.job_id == -1
