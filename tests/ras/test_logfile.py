"""Tests for repro.ras.logfile."""

import io

import pytest

from repro.ras.events import NO_JOB
from repro.ras.fields import Facility, Severity
from repro.ras.logfile import (
    LogDialect,
    LogParseError,
    ReadStats,
    format_event,
    iter_log_lines,
    parse_line,
    read_log,
    write_log,
)
from tests.conftest import make_event


def test_repro_dialect_roundtrip():
    ev = make_event(entry="some message with words", job_id=42)
    line = format_event(ev, LogDialect.REPRO)
    back = parse_line(line)
    assert back == ev


def test_loghub_dialect_roundtrip_drops_job():
    ev = make_event(job_id=42)
    line = format_event(ev, LogDialect.LOGHUB)
    back = parse_line(line)
    assert back.job_id == NO_JOB
    assert back.time == ev.time
    assert back.entry_data == ev.entry_data


def test_parse_real_loghub_line():
    line = (
        "- 1117838570 2005.06.03 R02-M1-N00-C12 2005-06-03-15.42.50.675872 "
        "R02-M1-N00-C12 RAS KERNEL INFO instruction cache parity error corrected"
    )
    ev = parse_line(line)
    assert ev.time == 1117838570
    assert ev.location == "R02-M1-N00-C12"
    assert ev.facility is Facility.KERNEL
    assert ev.severity is Severity.INFO
    assert ev.entry_data == "instruction cache parity error corrected"


def test_loghub_alert_tag_preserves_severity():
    ev = make_event(severity=Severity.FATAL, facility=Facility.APP)
    line = format_event(ev, LogDialect.LOGHUB)
    assert line.startswith("FATAL ")
    assert parse_line(line).severity is Severity.FATAL


def test_parse_line_too_few_fields():
    with pytest.raises(LogParseError, match="too few fields"):
        parse_line("1 2 3")


def test_parse_line_bad_severity():
    line = "100 1970.01.01 R00 1970-01-01-00.01.40.000000 5 RAS KERNEL NOPE msg"
    with pytest.raises(LogParseError):
        parse_line(line)


def test_write_and_read_log_file(tmp_path, tiny_store):
    path = tmp_path / "events.log"
    n = write_log(tiny_store.to_events(), path)
    assert n == len(tiny_store)
    store = read_log(path)
    assert len(store) == len(tiny_store)
    assert list(store.times) == list(tiny_store.times)


def test_read_log_skip_errors_counts(tmp_path):
    path = tmp_path / "bad.log"
    good = format_event(make_event())
    path.write_text(f"{good}\nthis is junk\n\n{good}\n")
    stats = ReadStats()
    store = read_log(path, errors="skip", stats=stats)
    assert len(store) == 2
    assert stats.skipped == 1
    assert stats.parsed == 2


def test_read_log_raise_on_error():
    stream = io.StringIO("garbage line with many words but no epoch here ok\n")
    with pytest.raises(LogParseError):
        list(iter_log_lines(stream))


def test_iter_log_lines_invalid_errors_mode():
    with pytest.raises(ValueError):
        list(iter_log_lines(io.StringIO(""), errors="ignore"))


def test_write_log_to_stream(tiny_store):
    buf = io.StringIO()
    write_log(tiny_store.to_events(), buf)
    assert len(buf.getvalue().splitlines()) == len(tiny_store)


def test_mixed_dialect_file(tmp_path):
    ev = make_event()
    path = tmp_path / "mixed.log"
    path.write_text(
        format_event(ev, LogDialect.REPRO)
        + "\n"
        + format_event(ev, LogDialect.LOGHUB)
        + "\n"
    )
    store = read_log(path)
    assert len(store) == 2
