"""Tests for repro.ras.fields."""

import pytest

from repro.ras.fields import FATAL_SEVERITIES, Facility, Severity


def test_severity_ordering_matches_paper():
    order = [
        Severity.INFO,
        Severity.WARNING,
        Severity.SEVERE,
        Severity.ERROR,
        Severity.FATAL,
        Severity.FAILURE,
    ]
    assert order == sorted(order)
    assert [s.name for s in order] == [
        "INFO", "WARNING", "SEVERE", "ERROR", "FATAL", "FAILURE",
    ]


@pytest.mark.parametrize(
    "sev,expected",
    [
        (Severity.INFO, False),
        (Severity.WARNING, False),
        (Severity.SEVERE, False),
        (Severity.ERROR, False),
        (Severity.FATAL, True),
        (Severity.FAILURE, True),
    ],
)
def test_is_fatal(sev, expected):
    assert sev.is_fatal is expected
    assert (sev in FATAL_SEVERITIES) is expected


def test_severity_from_name_case_insensitive():
    assert Severity.from_name(" fatal ") is Severity.FATAL


def test_severity_from_name_unknown():
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.from_name("CRITICAL")


def test_facility_from_name():
    assert Facility.from_name("kernel") is Facility.KERNEL
    with pytest.raises(ValueError):
        Facility.from_name("nope")


def test_facility_count():
    assert len(Facility) == 10
