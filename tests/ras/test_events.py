"""Tests for repro.ras.events."""

import pytest

from repro.ras.events import NO_JOB, RasEvent
from repro.ras.fields import Facility, Severity
from tests.conftest import make_event


def test_defaults():
    ev = make_event()
    assert ev.event_type == "RAS"
    assert ev.subcategory is None


def test_is_fatal_property():
    assert make_event(severity=Severity.FAILURE).is_fatal
    assert not make_event(severity=Severity.ERROR).is_fatal


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        make_event(time=-1)


def test_empty_location_rejected():
    with pytest.raises(ValueError):
        RasEvent(
            time=1,
            location="",
            facility=Facility.APP,
            severity=Severity.INFO,
            entry_data="x",
        )


def test_with_subcategory_does_not_mutate():
    ev = make_event()
    labeled = ev.with_subcategory("timerInterruptInfo")
    assert ev.subcategory is None
    assert labeled.subcategory == "timerInterruptInfo"


def test_subcategory_excluded_from_equality():
    a = make_event().with_subcategory("x")
    b = make_event().with_subcategory("y")
    assert a == b


def test_with_time():
    assert make_event(time=5).with_time(9).time == 9


def test_dedup_keys():
    ev = make_event(job_id=3, location="R00-M1", entry="msg")
    assert ev.dedup_key_temporal() == (3, "R00-M1")
    assert ev.dedup_key_spatial() == (3, "msg")


def test_no_job_constant():
    assert NO_JOB == -1
