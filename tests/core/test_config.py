"""Tests for repro.core.config."""

import pytest

from repro.core.config import PredictorConfig
from repro.util.timeutil import HOUR, MINUTE


def test_defaults_follow_paper():
    cfg = PredictorConfig()
    assert cfg.compression_threshold == 300.0
    assert cfg.min_support == 0.04
    assert cfg.min_confidence == 0.2
    assert cfg.rule_window == 15 * MINUTE
    assert cfg.statistical_lead == 5 * MINUTE
    assert cfg.statistical_window == HOUR


def test_validation():
    with pytest.raises(ValueError):
        PredictorConfig(compression_threshold=0)
    with pytest.raises(ValueError):
        PredictorConfig(min_support=1.5)
    with pytest.raises(ValueError):
        PredictorConfig(statistical_lead=HOUR, statistical_window=HOUR)
    with pytest.raises(ValueError):
        PredictorConfig(max_rule_len=1)


def test_with_prediction_window_copies():
    cfg = PredictorConfig()
    other = cfg.with_prediction_window(10 * MINUTE)
    assert other.prediction_window == 10 * MINUTE
    assert cfg.prediction_window == 30 * MINUTE
    assert other.rule_window == cfg.rule_window
