"""Tests for repro.core.pipeline (the end-to-end three-phase predictor)."""

import pytest

from repro.core.config import PredictorConfig
from repro.core.pipeline import ThreePhasePredictor
from repro.evaluation.matching import match_warnings
from repro.predictors.base import NotFittedError


@pytest.fixture(scope="module")
def raw_split():
    # A somewhat larger log than the shared fixture: a chronological split
    # needs enough failures in the test half to be meaningful.
    from repro.synth.generator import LogGenerator
    from repro.synth.profiles import anl_profile

    raw = LogGenerator(anl_profile(), scale=0.06, seed=3).generate().raw
    cut_time = raw.times[0] + int(raw.span_seconds() * 0.6)
    train = raw.time_window(raw.times[0], cut_time)
    test = raw.time_window(cut_time, raw.times[-1] + 1)
    return train, test


def test_fit_raw_predict_raw(raw_split):
    train, test = raw_split
    p = ThreePhasePredictor()
    p.fit_raw(train)
    warnings = p.predict_raw(test)
    assert p.report.fit_preprocess is not None
    assert p.report.predict_preprocess is not None
    assert p.report.rules_mined >= 1
    assert "network" in p.report.trigger_categories or (
        "iostream" in p.report.trigger_categories
    )
    assert warnings, "end-to-end run produced no warnings"
    # Warnings are actionable: evaluate them against the test fold.  The
    # test half of a scale-0.02 log holds only tens of failures, so assert
    # usefulness, not calibrated accuracy (the benches do that at scale).
    result = p.preprocess(test)
    metrics = match_warnings(warnings, result.events).metrics
    assert metrics.n_fatals > 0
    assert metrics.covered_fatals >= 1
    assert metrics.precision > 0.3


def test_predict_before_fit_raises(raw_split):
    _, test = raw_split
    with pytest.raises(NotFittedError):
        ThreePhasePredictor().predict_raw(test)


def test_fit_on_preprocessed_events(anl_events):
    p = ThreePhasePredictor()
    cut = int(len(anl_events) * 0.7)
    p.fit(anl_events.select(slice(0, cut)))
    warnings = p.predict(anl_events.select(slice(cut, len(anl_events))))
    assert isinstance(warnings, list)
    assert p.report.fit_preprocess is None  # phase 1 not invoked


def test_config_propagates():
    cfg = PredictorConfig(prediction_window=600.0, miner="fpgrowth")
    p = ThreePhasePredictor(cfg)
    assert p.rulebased.prediction_window == 600.0
    assert p.rulebased.miner == "fpgrowth"
    assert p.meta.prediction_window == 600.0
    assert p.statistical.window == cfg.statistical_window


def test_shared_classifier():
    p = ThreePhasePredictor()
    assert p.statistical.classifier is p.classifier
    assert p.preprocessor.classifier is p.classifier
