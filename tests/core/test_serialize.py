"""Tests for repro.core.serialize (model persistence)."""

import io
import json

import pytest

from repro.core.pipeline import ThreePhasePredictor
from repro.core.serialize import (
    SerializationError,
    apply_learned_state,
    codec_for,
    codec_for_kind,
    learned_state_to_dict,
    load_model,
    meta_from_dict,
    meta_to_dict,
    register_codec,
    registered_kinds,
    ruleset_from_dict,
    ruleset_to_dict,
    save_model,
)
from repro.meta.stacked import MetaLearner
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.util.timeutil import MINUTE


@pytest.fixture(scope="module")
def fitted(anl_events):
    cut = int(len(anl_events) * 0.7)
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_events.select(slice(0, cut)))
    return meta, anl_events.select(slice(cut, len(anl_events)))


def test_meta_roundtrip_identical_predictions(fitted, tmp_path):
    meta, test = fitted
    path = tmp_path / "model.json"
    save_model(meta, path)
    loaded = load_model(path)
    assert isinstance(loaded, MetaLearner)

    original = meta.predict(test)
    reloaded = loaded.predict(test)
    assert [
        (w.issued_at, w.horizon_start, w.horizon_end, w.detail)
        for w in original
    ] == [
        (w.issued_at, w.horizon_start, w.horizon_end, w.detail)
        for w in reloaded
    ]


def test_three_phase_roundtrip(anl_events, tmp_path):
    cut = int(len(anl_events) * 0.7)
    p = ThreePhasePredictor()
    p.fit(anl_events.select(slice(0, cut)))
    test = anl_events.select(slice(cut, len(anl_events)))

    buf = io.StringIO()
    save_model(p, buf)
    buf.seek(0)
    loaded = load_model(buf)
    assert isinstance(loaded, ThreePhasePredictor)
    assert loaded.config.rule_window == p.config.rule_window
    assert loaded.report.rules_mined == p.report.rules_mined
    assert [w.detail for w in loaded.predict(test)] == [
        w.detail for w in p.predict(test)
    ]


def test_ruleset_roundtrip(fitted):
    meta, _ = fitted
    rs = meta.rulebased.ruleset
    again = ruleset_from_dict(ruleset_to_dict(rs))
    assert len(again) == len(rs)
    assert [(r.body, r.heads, r.confidence) for r in again] == [
        (r.body, r.heads, r.confidence) for r in rs
    ]
    assert again.item_names == rs.item_names


def test_statistical_state_preserved(fitted, tmp_path):
    meta, _ = fitted
    loaded = meta_from_dict(meta_to_dict(meta))
    assert loaded.statistical.trigger_categories == (
        meta.statistical.trigger_categories
    )
    assert loaded.statistical.follow_probability == (
        meta.statistical.follow_probability
    )


def test_unfitted_predictor_rejected():
    with pytest.raises(SerializationError, match="not fitted"):
        meta_to_dict(MetaLearner())


def test_unknown_object_rejected(tmp_path):
    with pytest.raises(SerializationError):
        save_model(object(), tmp_path / "x.json")  # type: ignore[arg-type]


def test_version_check(fitted, tmp_path):
    meta, _ = fitted
    path = tmp_path / "model.json"
    save_model(meta, path)
    doc = json.loads(path.read_text())
    doc["format_version"] = 99
    path.write_text(json.dumps(doc))
    with pytest.raises(SerializationError, match="version"):
        load_model(path)


def test_malformed_document(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format_version": 1, "kind": "meta",
                                "meta": {"prediction_window": 60}}))
    with pytest.raises(SerializationError):
        load_model(path)


def test_out_of_range_item_ids(fitted):
    meta, _ = fitted
    doc = ruleset_to_dict(meta.rulebased.ruleset)
    if doc["rules"]:
        doc["rules"][0]["body"] = [999_999]
        with pytest.raises(SerializationError, match="out of range"):
            ruleset_from_dict(doc)


def test_unknown_kind(tmp_path):
    path = tmp_path / "k.json"
    path.write_text(json.dumps({"format_version": 1, "kind": "magic"}))
    with pytest.raises(SerializationError, match="kind"):
        load_model(path)


# ---------------------------------------------------------------------- #
# Codec registry + learned-state payloads
# ---------------------------------------------------------------------- #


def test_codec_registry_covers_builtin_kinds():
    assert set(registered_kinds()) == {
        "statistical", "rule", "meta", "three-phase",
    }
    assert codec_for_kind("meta").cls is MetaLearner
    with pytest.raises(SerializationError, match="kind"):
        codec_for_kind("magic")
    with pytest.raises(SerializationError, match="cannot serialize"):
        codec_for(object())


def test_duplicate_codec_rejected():
    meta_codec = codec_for_kind("meta")
    with pytest.raises(ValueError, match="duplicate"):
        register_codec(meta_codec)


def test_learned_state_roundtrip_identical_predictions(fitted):
    """State applied to a *fresh* predictor reproduces the fitted one."""
    meta, test = fitted
    doc = learned_state_to_dict(meta)
    assert doc["kind"] == "meta"
    restored = apply_learned_state(
        MetaLearner(prediction_window=30 * MINUTE, rule_window=15 * MINUTE),
        doc,
    )
    assert restored.is_fitted
    assert [w.detail for w in restored.predict(test)] == [
        w.detail for w in meta.predict(test)
    ]


def test_learned_state_survives_prediction_window_change(fitted):
    """The cache's key insight: state is portable across predict-only params."""
    meta, test = fitted
    doc = learned_state_to_dict(meta.rulebased)
    wide = apply_learned_state(
        RuleBasedPredictor(
            rule_window=15 * MINUTE, prediction_window=60 * MINUTE
        ),
        doc,
    )
    assert wide.prediction_window == 60 * MINUTE  # target's own parameter kept
    assert len(wide.ruleset) == len(meta.rulebased.ruleset)
    assert wide.no_precursor_fraction == meta.rulebased.no_precursor_fraction


def test_apply_learned_state_validates_document(fitted):
    meta, _ = fitted
    doc = learned_state_to_dict(meta)
    with pytest.raises(SerializationError, match="kind"):
        apply_learned_state(RuleBasedPredictor(), doc)
    with pytest.raises(SerializationError, match="version"):
        apply_learned_state(MetaLearner(), {**doc, "format_version": 99})
    with pytest.raises(SerializationError, match="state"):
        apply_learned_state(MetaLearner(), {**doc, "state": None})


def test_from_state_requires_fitted_bases():
    with pytest.raises(ValueError, match="fitted"):
        MetaLearner.from_state(
            prediction_window=30 * MINUTE,
            statistical=StatisticalPredictor(),
            rulebased=RuleBasedPredictor(),
        )
