"""Integration: the three-phase pipeline emits the documented trace.

``docs/observability.md`` promises a specific span hierarchy and metric set
for an instrumented ``fit_raw``/``predict_raw`` run; this test pins it.
"""

from repro.core.pipeline import ThreePhasePredictor
from repro.obs import MetricsRegistry, use


def test_fit_raw_predict_raw_emit_phase_spans(small_anl_log):
    registry = MetricsRegistry()
    predictor = ThreePhasePredictor()
    with use(registry):
        predictor.fit_raw(small_anl_log.raw)
        predictor.predict_raw(small_anl_log.raw)

    # fit_raw -> phase1 + phase2; predict_raw -> phase1 + phase3.
    assert [s.name for s in registry.spans] == [
        "phase1",
        "phase2",
        "phase1",
        "phase3",
    ]
    assert all(s.duration > 0.0 for s in registry.iter_spans())

    phase1, phase2, _, phase3 = registry.spans
    # The streaming path (taken when the raw store is columnar-backed,
    # e.g. under REPRO_STORE_BACKEND=columnar) compresses before
    # classifying; the child *set* is the contract, batch order is pinned
    # only on the batch path.
    if small_anl_log.raw.backend_kind == "columnar":
        expected = ["phase1.temporal", "phase1.classify", "phase1.spatial"]
    else:
        expected = ["phase1.classify", "phase1.temporal", "phase1.spatial"]
    assert [c.name for c in phase1.children[:3]] == expected
    fit_children = {c.name for c in phase2.children}
    assert {"phase2.fit.statistical", "phase2.fit.rule"} <= fit_children
    assert [c.name for c in phase3.children] == ["phase3.dispatch"]

    # The mining span carries the miner label, nested under the rule fit.
    mine_spans = [s for s in registry.iter_spans() if s.name == "phase2.mine"]
    assert mine_spans
    assert mine_spans[0].labels["miner"] in {"apriori", "fpgrowth"}


def test_instrumented_run_records_documented_metrics(small_anl_log):
    registry = MetricsRegistry()
    predictor = ThreePhasePredictor()
    with use(registry):
        predictor.fit_raw(small_anl_log.raw)
        predictor.predict_raw(small_anl_log.raw)

    counters = registry.counters
    assert counters["preprocess.records_in"] == 2 * len(small_anl_log.raw)
    assert counters["preprocess.events_out"] > 0
    assert "predictor.rules_mined" in counters
    assert "meta.dispatch{method=rule}" in counters
    assert "meta.dispatch{method=statistical}" in counters
    assert any(key.startswith("mining.") for key in counters)
    assert 0.0 < registry.gauges["preprocess.compression_ratio"] < 1.0


def test_uninstrumented_run_leaves_the_null_registry_empty(small_anl_log):
    from repro.obs import NULL_REGISTRY, get_registry

    predictor = ThreePhasePredictor()
    predictor.fit_raw(small_anl_log.raw)
    assert get_registry() is NULL_REGISTRY
    assert NULL_REGISTRY.spans == []
    assert NULL_REGISTRY.counters == {}
