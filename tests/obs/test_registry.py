"""Unit tests for the metrics registry and its exporters."""

import json

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metric_key,
    set_registry,
    snapshot,
    span_totals,
    summarize_histogram,
    use,
)
from repro.obs.export import percentile


# ---------------------------------------------------------------- keys


def test_metric_key_plain_and_labelled():
    assert metric_key("a.b", {}) == "a.b"
    assert metric_key("a.b", {"x": "1"}) == "a.b{x=1}"
    # Label keys are sorted, so insertion order never splits a series.
    assert (
        metric_key("a", {"z": "2", "m": "1"})
        == metric_key("a", {"m": "1", "z": "2"})
        == "a{m=1,z=2}"
    )


# ---------------------------------------------------------------- scalars


def test_counter_accumulates_and_separates_label_sets():
    reg = MetricsRegistry()
    reg.counter("hits")
    reg.counter("hits", 4)
    reg.counter("hits", 2, source="rule")
    assert reg.counters == {"hits": 5, "hits{source=rule}": 2}


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge("ratio", 0.25)
    reg.gauge("ratio", 0.75)
    assert reg.gauges == {"ratio": 0.75}


def test_observe_collects_samples_and_timer_feeds_histogram():
    reg = MetricsRegistry()
    reg.observe("lat", 1.0)
    reg.observe("lat", 3.0)
    assert reg.histograms["lat"] == [1.0, 3.0]
    with reg.timer("t"):
        pass
    (sample,) = reg.histograms["t"]
    assert sample >= 0.0


# ---------------------------------------------------------------- histograms


def test_percentile_linear_interpolation():
    samples = sorted(float(v) for v in range(1, 101))
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 100) == 100.0
    assert percentile(samples, 50) == pytest.approx(50.5)
    assert percentile(samples, 90) == pytest.approx(90.1)
    assert percentile(samples, 99) == pytest.approx(99.01)


def test_percentile_edge_cases():
    assert percentile([7.0], 99) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_summarize_histogram_fields():
    s = summarize_histogram([3.0, 1.0, 2.0])
    assert s["count"] == 3
    assert s["sum"] == 6.0
    assert s["min"] == 1.0
    assert s["max"] == 3.0
    assert s["mean"] == pytest.approx(2.0)
    assert s["p50"] == pytest.approx(2.0)


# ---------------------------------------------------------------- spans


def test_spans_nest_into_a_tree():
    reg = MetricsRegistry()
    with reg.span("outer"):
        with reg.span("inner", k="v"):
            pass
        with reg.span("inner2"):
            pass
    (root,) = reg.spans
    assert root.name == "outer"
    assert [c.name for c in root.children] == ["inner", "inner2"]
    assert root.children[0].labels == {"k": "v"}
    # Depth-first walk: the root first, then each child.
    assert [s.name for s in root.walk()] == ["outer", "inner", "inner2"]
    assert all(s.duration > 0.0 for s in reg.iter_spans())
    # The parent encloses its children.
    assert root.duration >= root.children[0].duration


def test_span_closes_on_exception():
    reg = MetricsRegistry()
    with pytest.raises(RuntimeError):
        with reg.span("boom"):
            raise RuntimeError("x")
    (root,) = reg.spans
    assert root.duration > 0.0
    assert reg._stack == []


def test_span_totals_aggregates_by_name():
    reg = MetricsRegistry()
    for _ in range(3):
        with reg.span("fold"):
            pass
    totals = span_totals(reg)
    assert totals["fold"][0] == 3
    assert totals["fold"][1] > 0.0


# ---------------------------------------------------------------- export


def test_json_round_trips_to_snapshot():
    reg = MetricsRegistry()
    reg.counter("c", 2, k="v")
    reg.gauge("g", 1.5)
    reg.observe("h", 0.25)
    with reg.span("root", phase="1"):
        with reg.span("child"):
            pass
    assert json.loads(reg.to_json()) == snapshot(reg)
    snap = snapshot(reg)
    assert snap["counters"] == {"c{k=v}": 2}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["spans"][0]["labels"] == {"phase": "1"}
    assert snap["spans"][0]["children"][0]["name"] == "child"


def test_to_text_renders_every_section():
    reg = MetricsRegistry()
    reg.counter("c")
    reg.gauge("g", 2.0)
    reg.observe("h", 1.0)
    with reg.span("root"):
        pass
    text = reg.to_text()
    for section in ("counters:", "gauges:", "histograms:", "spans:"):
        assert section in text
    assert "root:" in text


def test_clear_resets_recorded_state():
    reg = MetricsRegistry()
    reg.counter("c")
    reg.gauge("g", 1.0)
    reg.observe("h", 1.0)
    with reg.span("s"):
        pass
    reg.clear()
    assert snapshot(reg) == {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": [],
    }


# ---------------------------------------------------------------- active registry


def test_default_registry_is_the_shared_null_one():
    assert get_registry() is NULL_REGISTRY
    assert isinstance(NULL_REGISTRY, NullRegistry)
    assert not NULL_REGISTRY.enabled


def test_null_registry_records_nothing():
    reg = NullRegistry()
    reg.counter("c", 5)
    reg.gauge("g", 1.0)
    reg.observe("h", 1.0)
    with reg.span("s") as span:
        with reg.timer("t"):
            pass
    assert span.name == ""  # the shared placeholder span
    assert snapshot(reg) == {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": [],
    }


def test_use_installs_and_restores():
    reg = MetricsRegistry()
    assert get_registry() is NULL_REGISTRY
    with use(reg) as active:
        assert active is reg
        assert get_registry() is reg
        reg.counter("seen")
    assert get_registry() is NULL_REGISTRY
    assert reg.counters == {"seen": 1}


def test_set_registry_returns_previous_and_none_means_null():
    reg = MetricsRegistry()
    previous = set_registry(reg)
    try:
        assert previous is NULL_REGISTRY
        assert get_registry() is reg
    finally:
        assert set_registry(None) is reg
    assert get_registry() is NULL_REGISTRY
