"""Integration tests: full pipeline, both profiles, cross-module contracts."""


from repro.core.pipeline import ThreePhasePredictor
from repro.evaluation.crossval import cross_validate
from repro.meta.stacked import MetaLearner
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.ras.logfile import read_log, write_log
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import HOUR, MINUTE


def test_log_file_roundtrip_preserves_pipeline_results(small_anl_log, tmp_path):
    """Writing the raw log to disk and reading it back must not change
    Phase-1 output (the store is fully serializable)."""
    path = tmp_path / "anl_raw.log"
    write_log(small_anl_log.raw, path)
    reread = read_log(path)
    assert len(reread) == len(small_anl_log.raw)

    direct = ThreePhasePredictor().preprocess(small_anl_log.raw)
    via_disk = ThreePhasePredictor().preprocess(reread)
    assert direct.unique_events == via_disk.unique_events
    assert list(direct.events.times) == list(via_disk.events.times)


def test_both_profiles_full_pipeline(anl_events, sdsc_events):
    for events in (anl_events, sdsc_events):
        cv = cross_validate(
            lambda: MetaLearner(
                prediction_window=30 * MINUTE, rule_window=15 * MINUTE
            ),
            events,
            k=5,
        )
        assert 0.0 <= cv.precision <= 1.0
        assert cv.recall > 0.15


def test_meta_dominates_bases_in_cv(anl_events):
    """Cross-validated version of the paper's headline comparison."""
    k = 5
    W, G = 30 * MINUTE, 15 * MINUTE
    stat = cross_validate(
        lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        anl_events, k=k,
    )
    rule = cross_validate(
        lambda: RuleBasedPredictor(rule_window=G, prediction_window=W),
        anl_events, k=k,
    )
    meta = cross_validate(
        lambda: MetaLearner(prediction_window=W, rule_window=G),
        anl_events, k=k,
    )
    assert meta.recall >= max(stat.recall, rule.recall) - 0.02
    assert meta.precision >= stat.precision - 0.05


def test_rule_precision_exceeds_statistical(anl_events):
    """Paper: the rule method is the high-precision base."""
    k = 5
    stat = cross_validate(
        lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        anl_events, k=k,
    )
    rule = cross_validate(
        lambda: RuleBasedPredictor(
            rule_window=15 * MINUTE, prediction_window=30 * MINUTE
        ),
        anl_events, k=k,
    )
    assert rule.precision > stat.precision


def test_warning_stream_well_formed(anl_events):
    cut = int(len(anl_events) * 0.7)
    meta = MetaLearner().fit(anl_events.select(slice(0, cut)))
    test = anl_events.select(slice(cut, len(anl_events)))
    warnings = meta.predict(test)
    t0, t1 = int(test.times[0]), int(test.times[-1])
    for w in warnings:
        assert t0 <= w.issued_at <= t1
        assert w.horizon_start > w.issued_at
        assert 0.0 <= w.confidence <= 1.0
    issued = [w.issued_at for w in warnings]
    assert issued == sorted(issued)


def test_subcategory_vocabulary_stable_across_folds(anl_events):
    """Item ids must mean the same thing in train and test folds (shared
    intern tables) — otherwise mined rules would be garbage."""
    cut = int(len(anl_events) * 0.5)
    a = anl_events.select(slice(0, cut))
    b = anl_events.select(slice(cut, len(anl_events)))
    assert a.subcat_table is b.subcat_table


def test_statistical_triggers_consistent_between_profiles(
    anl_events, sdsc_events
):
    """Network/iostream dominate temporal correlation on both systems."""
    for events in (anl_events, sdsc_events):
        sp = StatisticalPredictor(window=HOUR, lead=5 * MINUTE).fit(events)
        probs = sp.follow_probability
        netio = {MainCategory.NETWORK, MainCategory.IOSTREAM}
        # Consider only categories with a meaningful sample.
        fatal = events.fatal_events()
        cat_ids = sp.classifier.main_category_ids(fatal)
        cats = list(MainCategory)
        big = {
            c for i, c in enumerate(cats)
            if int((cat_ids == i).sum()) >= 10
        }
        ranked = sorted(
            (c for c in probs if c in big), key=lambda c: -probs[c]
        )
        assert set(ranked[:2]) <= netio | {MainCategory.APPLICATION}
        assert netio & set(ranked[:2])
