"""Smoke-run the example scripts (they are part of the public surface).

``reproduce_anl_study.py`` and ``custom_cluster.py`` take minutes at their
committed scales and are exercised manually / by the benches; the two fast
examples run here end to end.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart_runs(capsys):
    out = _run("quickstart.py", capsys)
    assert "precision =" in out
    assert "mean warning lead time" in out


@pytest.mark.slow
def test_online_monitor_runs(capsys):
    out = _run("online_monitor.py", capsys)
    assert "shift summary:" in out
    assert "failures caught:" in out


def test_all_examples_importable():
    """Every example at least parses and resolves its imports."""
    import ast

    for path in sorted(EXAMPLES.glob("*.py")):
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        # main() must exist and the module must be guard-executed.
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names, path.name
        assert '__name__ == "__main__"' in source, path.name
