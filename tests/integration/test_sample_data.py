"""The committed sample log must stay loadable and pipeline-compatible."""

from pathlib import Path

import pytest

from repro.core.pipeline import ThreePhasePredictor
from repro.ras.logfile import read_log

SAMPLE = Path(__file__).resolve().parents[2] / "data" / "sample_anl.log"


@pytest.fixture(scope="module")
def sample_store():
    assert SAMPLE.exists(), "data/sample_anl.log missing from the repo"
    return read_log(SAMPLE)


def test_sample_loads(sample_store):
    assert len(sample_store) == 4000
    assert sample_store.is_time_sorted()


def test_sample_preprocesses(sample_store):
    result = ThreePhasePredictor().preprocess(sample_store)
    assert 0 < result.unique_events < len(sample_store)
    assert result.overall_compression > 0.5
    # The sample's span begins at the ANL profile's start date.
    assert result.events.times[0] >= 1106265600


def test_sample_classifies_fully(sample_store):
    from repro.taxonomy.classifier import OTHER_FALLBACK, TaxonomyClassifier

    labeled = TaxonomyClassifier().classify_store(sample_store)
    assert OTHER_FALLBACK not in labeled.subcat_counts()


def test_sample_cli_roundtrip(capsys):
    from repro.cli.main import main

    assert main(["preprocess", str(SAMPLE)]) == 0
    out = capsys.readouterr().out
    assert "unique events" in out
