"""Failure-injection tests: malformed inputs, degenerate streams."""

import io

import numpy as np

from repro.core.pipeline import ThreePhasePredictor
from repro.meta.stacked import MetaLearner
from repro.mining.transactions import build_event_sets
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.ras.fields import Severity
from repro.ras.logfile import ReadStats, read_log
from repro.ras.store import EventStore
from repro.taxonomy.classifier import TaxonomyClassifier
from tests.conftest import make_event


def _labeled(events):
    return TaxonomyClassifier().classify_store(EventStore.from_events(events))


def test_corrupted_log_lines_are_survivable(small_anl_log, tmp_path):
    """A log with interleaved garbage loads with errors='skip'."""
    from repro.ras.logfile import format_event

    path = tmp_path / "corrupt.log"
    with open(path, "w") as fh:
        for i, ev in enumerate(small_anl_log.raw.to_events()[:500]):
            fh.write(format_event(ev) + "\n")
            if i % 50 == 0:
                fh.write("XXXX corrupted line !!!\n")
                fh.write("\n")
    stats = ReadStats()
    store = read_log(path, errors="skip", stats=stats)
    assert len(store) == 500
    assert stats.skipped == 10


def test_all_fatal_stream():
    """A stream with no non-fatal events: rules mine nothing, statistical
    still works, meta degrades gracefully."""
    events = _labeled([
        make_event(time=1000 + 400 * k, severity=Severity.FAILURE,
                   entry="uncorrectable torus error: retransmission limit exceeded")
        for k in range(50)
    ])
    rb = RuleBasedPredictor().fit(events)
    assert len(rb.ruleset) == 0
    assert rb.no_precursor_fraction == 1.0
    assert rb.predict(events) == []

    meta = MetaLearner().fit(events)
    warnings = meta.predict(events)
    assert all(w.detail.startswith("statistical") for w in warnings)


def test_all_nonfatal_stream():
    """No failures at all: nothing to learn, nothing to predict."""
    events = _labeled([
        make_event(time=1000 + 60 * k, severity=Severity.INFO,
                   entry="timer interrupt rollover serviced")
        for k in range(50)
    ])
    sp = StatisticalPredictor().fit(events)
    assert sp.trigger_categories == ()
    meta = MetaLearner().fit(events)
    assert meta.predict(events) == []
    db = build_event_sets(events, rule_window=900)
    assert len(db) == 0


def test_single_event_stream():
    events = _labeled([
        make_event(time=5, severity=Severity.FATAL,
                   entry="kernel panic: unrecoverable condition detected")
    ])
    p = ThreePhasePredictor()
    p.fit(events)
    assert p.predict(events) == []


def test_identical_timestamps():
    """Many events at the same second (the CMCS reality) must not break
    window logic or compression."""
    events = _labeled(
        [
            make_event(time=1000, location=f"R00-M0-N{n:02d}-C00",
                       severity=Severity.INFO,
                       entry="dma transfer error: descriptor retried")
            for n in range(16)
        ]
        + [
            make_event(time=1000, severity=Severity.FAILURE,
                       entry="kernel panic: unrecoverable condition detected")
        ]
    )
    p = ThreePhasePredictor()
    result = p.preprocess(events.select(np.arange(len(events))))
    assert len(result.events) >= 1
    p.fit(events)
    p.predict(events)


def test_unknown_messages_classify_to_fallback_and_flow_through():
    events = [
        make_event(time=100 + k, entry=f"mystery message {k}")
        for k in range(20)
    ] + [
        make_event(time=200, severity=Severity.FATAL,
                   entry="another mystery, fatal this time"),
    ]
    p = ThreePhasePredictor()
    result = p.preprocess(EventStore.from_events(events))
    assert len(result.events.fatal_events()) == 1
    p.fit(result.events)  # must not raise


def test_empty_log_stream():
    store = read_log(io.StringIO(""))
    assert len(store) == 0
    result = ThreePhasePredictor().preprocess(store)
    assert result.unique_events == 0
