"""Tests for repro.evaluation.matching."""

import numpy as np
import pytest

from repro.evaluation.matching import match_warnings
from repro.predictors.base import FailureWarning
from repro.ras.fields import Severity
from repro.ras.store import EventStore
from tests.conftest import make_event


def _store_with_fatals(times, nonfatal_times=()):
    events = [
        make_event(time=t, severity=Severity.FATAL,
                   entry="kernel panic: unrecoverable condition detected")
        for t in times
    ] + [
        make_event(time=t, severity=Severity.INFO, entry="noise")
        for t in nonfatal_times
    ]
    return EventStore.from_events(events)


def w(issued, start, end, conf=0.5, source="s", detail=""):
    return FailureWarning(issued_at=issued, horizon_start=start,
                          horizon_end=end, confidence=conf, source=source,
                          detail=detail)


def test_simple_hit_and_miss():
    store = _store_with_fatals([100, 1000])
    warnings = [w(50, 60, 200), w(400, 410, 500)]
    res = match_warnings(warnings, store)
    assert list(res.warning_hit) == [True, False]
    assert list(res.fatal_covered) == [True, False]
    assert res.metrics.precision == pytest.approx(0.5)
    assert res.metrics.recall == pytest.approx(0.5)


def test_horizon_is_closed_interval():
    store = _store_with_fatals([100, 200])
    res = match_warnings([w(10, 100, 200)], store)
    assert res.warning_hit[0]
    assert res.fatal_covered.all()
    # Just outside on both ends:
    res2 = match_warnings([w(10, 101, 199)], store)
    assert not res2.warning_hit[0]


def test_one_warning_covers_many_fatals():
    store = _store_with_fatals([100, 150, 180])
    res = match_warnings([w(50, 60, 200)], store)
    assert res.metrics.tp_warnings == 1
    assert res.metrics.covered_fatals == 3


def test_many_warnings_one_fatal():
    store = _store_with_fatals([100])
    res = match_warnings([w(10, 50, 150), w(20, 60, 160)], store)
    assert res.metrics.tp_warnings == 2
    assert res.metrics.covered_fatals == 1


def test_nonfatal_events_ignored():
    store = _store_with_fatals([1000], nonfatal_times=[100, 110])
    res = match_warnings([w(50, 60, 200)], store)
    assert not res.warning_hit[0]
    assert res.metrics.n_fatals == 1


def test_lead_time_earliest_warning():
    store = _store_with_fatals([100])
    res = match_warnings([w(10, 50, 150), w(90, 95, 150)], store)
    # Lead comes from the earliest covering warning: 100 - 10.
    assert res.lead_seconds[0] == pytest.approx(90)
    assert res.mean_lead == pytest.approx(90)


def test_no_warnings():
    store = _store_with_fatals([100])
    res = match_warnings([], store)
    assert res.metrics.n_warnings == 0
    assert res.metrics.recall == 0.0
    assert np.isnan(res.lead_seconds).all()


def test_no_fatals():
    store = _store_with_fatals([], nonfatal_times=[10])
    res = match_warnings([w(5, 6, 100)], store)
    assert res.metrics.recall == 1.0  # nothing to predict
    assert res.metrics.precision == 0.0
    assert np.isnan(res.mean_lead)
