"""Tests for repro.evaluation.engine: parallel backends and caching."""

import numpy as np
import pytest

from repro.cache import ArtifactCache, fold_fit_key, store_fingerprint
from repro.evaluation.crossval import cross_validate, fold_index_ranges
from repro.evaluation.engine import (
    FoldTask,
    resolve_cache_dir,
    resolve_jobs,
    run_fold_tasks,
    spawn_task_seeds,
)
from repro.evaluation.spec import PredictorSpec
from repro.evaluation.sweep import sweep
from repro.util.timeutil import MINUTE

RULE_SPEC = PredictorSpec.rule(rule_window=15 * MINUTE)


# --------------------------------------------------------------------- #
# Configuration resolution
# --------------------------------------------------------------------- #


def test_resolve_jobs_explicit_and_default(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(4) == 4
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(1) == 1  # explicit wins over env


def test_resolve_jobs_rejects_bad_values(monkeypatch):
    with pytest.raises(ValueError, match="jobs must be >= 1"):
        resolve_jobs(0)
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        resolve_jobs(None)


def test_resolve_cache_dir(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert resolve_cache_dir(None) is None
    assert resolve_cache_dir(tmp_path) == str(tmp_path)
    monkeypatch.setenv("REPRO_CACHE_DIR", "/elsewhere")
    assert resolve_cache_dir(None) == "/elsewhere"
    assert resolve_cache_dir(tmp_path) == str(tmp_path)


def test_spawn_task_seeds():
    assert spawn_task_seeds(None, 3) == [None, None, None]
    seeds = spawn_task_seeds(7, 3)
    assert len(seeds) == 3
    # Same root -> same children; tasks are order-stable by construction.
    again = spawn_task_seeds(7, 3)
    assert [s.entropy for s in seeds] == [s.entropy for s in again]
    assert seeds[0].spawn_key != seeds[1].spawn_key


# --------------------------------------------------------------------- #
# Determinism across backends and cache states
# --------------------------------------------------------------------- #


def test_parallel_results_identical_to_serial(anl_events):
    """--jobs 2 must reproduce the serial run bit for bit."""
    serial = cross_validate(RULE_SPEC, anl_events, k=4, jobs=1)
    parallel = cross_validate(RULE_SPEC, anl_events, k=4, jobs=2)
    assert serial.fold_metrics == parallel.fold_metrics
    assert serial.precision == parallel.precision
    assert serial.recall == parallel.recall
    for a, b in zip(serial.fold_matches, parallel.fold_matches):
        assert (a.warning_hit == b.warning_hit).all()
        assert (a.fatal_covered == b.fatal_covered).all()
        # NaN marks uncovered fatals, hence equal_nan.
        assert np.array_equal(a.lead_seconds, b.lead_seconds, equal_nan=True)


def test_cached_results_identical_to_uncached(anl_events, tmp_path):
    plain = cross_validate(RULE_SPEC, anl_events, k=4)
    cold = cross_validate(RULE_SPEC, anl_events, k=4, cache_dir=tmp_path)
    warm = cross_validate(RULE_SPEC, anl_events, k=4, cache_dir=tmp_path)
    assert plain.fold_metrics == cold.fold_metrics == warm.fold_metrics


def test_warm_cache_skips_fitting(anl_events, tmp_path):
    ranges = fold_index_ranges(len(anl_events), 4)
    tasks = [
        FoldTask(spec=RULE_SPEC, start=s, end=e, fold=i)
        for i, (s, e) in enumerate(ranges)
    ]
    cold = run_fold_tasks(tasks, anl_events, cache_dir=tmp_path)
    assert [o.cache_hit for o in cold] == [False] * 4
    warm = run_fold_tasks(tasks, anl_events, cache_dir=tmp_path)
    assert [o.cache_hit for o in warm] == [True] * 4
    assert [o.match.metrics for o in cold] == [o.match.metrics for o in warm]


def test_parallel_workers_share_cache(anl_events, tmp_path):
    ranges = fold_index_ranges(len(anl_events), 4)
    tasks = [
        FoldTask(spec=RULE_SPEC, start=s, end=e, fold=i)
        for i, (s, e) in enumerate(ranges)
    ]
    run_fold_tasks(tasks, anl_events, jobs=2, cache_dir=tmp_path)
    warm = run_fold_tasks(tasks, anl_events, jobs=2, cache_dir=tmp_path)
    assert all(o.cache_hit for o in warm)


def test_outcomes_keep_task_order(anl_events):
    ranges = fold_index_ranges(len(anl_events), 5)
    tasks = [
        FoldTask(spec=RULE_SPEC, start=s, end=e, fold=i, group=i % 2)
        for i, (s, e) in enumerate(ranges)
    ]
    outcomes = run_fold_tasks(tasks, anl_events, jobs=2)
    assert [(o.group, o.fold) for o in outcomes] == [
        (t.group, t.fold) for t in tasks
    ]


# --------------------------------------------------------------------- #
# Cache keys
# --------------------------------------------------------------------- #


def test_cache_keys_stable_across_runs(anl_events):
    fp = store_fingerprint(anl_events)
    key1 = fold_fit_key(fp, 0, 100, RULE_SPEC)
    key2 = fold_fit_key(store_fingerprint(anl_events), 0, 100, RULE_SPEC)
    assert key1 == key2
    assert len(key1) == 64


def test_cache_key_tracks_every_ingredient(anl_events, sdsc_events):
    fp = store_fingerprint(anl_events)
    base = fold_fit_key(fp, 0, 100, RULE_SPEC)
    assert fold_fit_key(fp, 0, 99, RULE_SPEC) != base
    assert fold_fit_key(fp, 1, 100, RULE_SPEC) != base
    other_spec = RULE_SPEC.with_params(min_support=0.1)
    assert fold_fit_key(fp, 0, 100, other_spec) != base
    other_fp = store_fingerprint(sdsc_events)
    assert other_fp != fp
    assert fold_fit_key(other_fp, 0, 100, RULE_SPEC) != base


def test_prediction_window_points_share_cache_entries(anl_events, tmp_path):
    """The Figure-4 sweep mines each fold's rules once, not once per window."""
    windows = [10 * MINUTE, 20 * MINUTE, 30 * MINUTE]
    sweep(RULE_SPEC.grid("prediction_window", windows), anl_events,
          k=4, cache_dir=tmp_path)
    cache = ArtifactCache(tmp_path)
    # 3 windows x 4 folds = 12 tasks, but only 4 distinct fit artifacts.
    assert len(cache) == 4


def test_rule_window_points_do_not_share(anl_events, tmp_path):
    windows = [10 * MINUTE, 20 * MINUTE]
    sweep(RULE_SPEC.grid("rule_window", windows), anl_events,
          k=4, cache_dir=tmp_path)
    assert len(ArtifactCache(tmp_path)) == 8  # 2 windows x 4 folds


# --------------------------------------------------------------------- #
# Legacy callables
# --------------------------------------------------------------------- #


def test_factory_callable_still_works_and_matches_spec(anl_events):
    from repro.predictors.rulebased import RuleBasedPredictor

    legacy = cross_validate(
        lambda: RuleBasedPredictor(rule_window=15 * MINUTE),
        anl_events, k=4,
    )
    modern = cross_validate(RULE_SPEC, anl_events, k=4)
    assert legacy.fold_metrics == modern.fold_metrics
