"""Worker path-shipping: columnar stores cross the process boundary by path."""

import pickle

import pytest

from repro.evaluation.engine import (
    FoldTask,
    _init_worker,
    _run_in_worker,
    _ship_events,
    run_fold_tasks,
)
from repro.evaluation.spec import PredictorSpec


@pytest.fixture(scope="module")
def columnar_events(tmp_path_factory, anl_events):
    """The phase-1 unique-event store reopened from disk (what folds see)."""
    from repro.ras.columnar import open_store, write_store

    path = tmp_path_factory.mktemp("engine") / "events-store"
    write_store(anl_events, path)
    return open_store(path)


def test_ship_events_returns_path_for_columnar(columnar_raw, anl_events):
    shipped = _ship_events(columnar_raw)
    assert shipped == columnar_raw.storage_path
    assert isinstance(shipped, str)
    # In-memory stores still ship whole.
    assert _ship_events(anl_events) is anl_events


def test_shipped_path_is_tiny_compared_to_pickled_store(columnar_raw):
    path_bytes = len(pickle.dumps(_ship_events(columnar_raw)))
    store_bytes = len(pickle.dumps(columnar_raw.materialized()))
    assert path_bytes < 1024
    assert store_bytes > 50 * path_bytes


def test_init_worker_reopens_store_from_path(columnar_events):
    """The worker initializer accepts a path and reopens the memory map."""
    import repro.evaluation.engine as engine

    _init_worker(str(columnar_events.storage_path), None, "")
    try:
        assert engine._WORKER_EVENTS is not None
        assert engine._WORKER_EVENTS.backend_kind == "columnar"
        assert len(engine._WORKER_EVENTS) == len(columnar_events)
        task = FoldTask(
            spec=PredictorSpec.statistical(window=1800.0, lead=0.0),
            start=0,
            end=min(100, len(columnar_events)),
            fold=0,
        )
        outcome = _run_in_worker(task)
        assert outcome.fold == 0
    finally:
        engine._WORKER_EVENTS = None


def test_fold_tasks_identical_across_backends(columnar_events, anl_events):
    spec = PredictorSpec.statistical(window=1800.0, lead=0.0)
    n = len(columnar_events)
    tasks = [
        FoldTask(spec=spec, start=i * n // 3, end=(i + 1) * n // 3, fold=i)
        for i in range(3)
    ]
    on_disk = run_fold_tasks(tasks, columnar_events)
    in_ram = run_fold_tasks(tasks, anl_events)
    import numpy as np

    for a, b in zip(on_disk, in_ram):
        assert a.fold == b.fold
        assert a.match.metrics == b.match.metrics
        np.testing.assert_array_equal(a.match.warning_hit, b.match.warning_hit)
        np.testing.assert_array_equal(
            a.match.fatal_covered, b.match.fatal_covered
        )
        np.testing.assert_array_equal(
            a.match.lead_seconds, b.match.lead_seconds
        )
