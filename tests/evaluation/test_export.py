"""Tests for repro.evaluation.export."""

import csv
import io

import pytest

from repro.evaluation.crossval import CVResult
from repro.evaluation.export import (
    write_category_csv,
    write_cdf_csv,
    write_sweep_csv,
)
from repro.evaluation.sweep import SweepPoint
from repro.taxonomy.categories import MainCategory


def _pt(window, p, r):
    return SweepPoint(window=window, precision=p, recall=r,
                      result=CVResult([], []))


def test_sweep_csv_roundtrip(tmp_path):
    path = tmp_path / "sweep.csv"
    n = write_sweep_csv([_pt(300, 0.8, 0.4), _pt(3600, 0.7, 0.6)], path)
    assert n == 2
    rows = list(csv.DictReader(path.open()))
    assert rows[0]["window_minutes"] == "5"
    assert float(rows[0]["precision"]) == pytest.approx(0.8)
    assert float(rows[1]["f1"]) == pytest.approx(2 * 0.7 * 0.6 / 1.3, abs=1e-5)


def test_sweep_csv_to_stream():
    buf = io.StringIO()
    write_sweep_csv([_pt(600, 0.5, 0.5)], buf)
    assert buf.getvalue().startswith("window_minutes,precision")


def test_cdf_csv(tmp_path):
    path = tmp_path / "cdf.csv"
    n = write_cdf_csv([300, 600], [0.1, 0.2], path)
    assert n == 2
    rows = list(csv.DictReader(path.open()))
    assert rows[1]["offset_seconds"] == "600"


def test_cdf_csv_length_mismatch():
    with pytest.raises(ValueError):
        write_cdf_csv([1, 2], [0.1], io.StringIO())


def test_category_csv(tmp_path):
    counts = {c: 0 for c in MainCategory}
    counts[MainCategory.NETWORK] = 5
    path = tmp_path / "cat.csv"
    n = write_category_csv({"ANL": counts}, path)
    assert n == 9  # 8 categories + total
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["category", "ANL"]
    assert ["network", "5"] in rows
    assert rows[-1] == ["total", "5"]
