"""Tests for repro.evaluation.incremental — the spec-aware fitter bridge.

The fitter's contract is strict: fits must be bit-identical to
``predictor.fit(train)`` (so artifact-cache payloads and registry snapshot
ids never move), and maintained miners must be shared across specs with the
same mining recipe (so sweeps pay one fit per fit-relevant configuration).
"""

import numpy as np
import pytest

from repro.core.serialize import learned_state_to_dict
from repro.evaluation.crossval import cross_validate
from repro.evaluation.incremental import (
    SUPPORTED_KINDS,
    IncrementalFitter,
    is_incremental_enabled,
    mining_recipe,
    supports_incremental,
)
from repro.evaluation.spec import PredictorSpec
from repro.evaluation.sweep import sweep
from repro.util.timeutil import MINUTE

RULE_SPEC = PredictorSpec.rule(rule_window=15 * MINUTE)
META_SPEC = PredictorSpec.meta(rule_window=15 * MINUTE)


@pytest.fixture
def train(anl_events):
    return anl_events.select(slice(0, int(len(anl_events) * 0.7)))


# --------------------------------------------------------------------- #
# Gates and recipes
# --------------------------------------------------------------------- #


def test_supported_kinds():
    assert SUPPORTED_KINDS == {"rule", "meta"}
    assert supports_incremental(RULE_SPEC)
    assert supports_incremental(META_SPEC)
    assert not supports_incremental(PredictorSpec.statistical())
    assert not supports_incremental(PredictorSpec.of("three-phase"))


def test_is_incremental_enabled(monkeypatch):
    monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
    assert not is_incremental_enabled(None)
    assert is_incremental_enabled(True)
    assert not is_incremental_enabled(False)
    for value in ("1", "true", "ON", " yes "):
        monkeypatch.setenv("REPRO_INCREMENTAL", value)
        assert is_incremental_enabled(None)
    monkeypatch.setenv("REPRO_INCREMENTAL", "0")
    assert not is_incremental_enabled(None)
    # Explicit argument always wins over the environment.
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")
    assert not is_incremental_enabled(False)


def test_mining_recipe_ignores_predict_only_params():
    a = META_SPEC.with_params(prediction_window=10 * MINUTE)
    b = META_SPEC.with_params(prediction_window=60 * MINUTE)
    assert mining_recipe(a) == mining_recipe(b)
    assert mining_recipe(a) != mining_recipe(
        META_SPEC.with_params(rule_window=30 * MINUTE)
    )


def test_fitter_rejects_unsupported_kind(train):
    fitter = IncrementalFitter()
    with pytest.raises(ValueError, match="no incremental fit path"):
        fitter.fit(PredictorSpec.statistical(), train)


# --------------------------------------------------------------------- #
# Bit-identity with predictor.fit
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("spec", [RULE_SPEC, META_SPEC], ids=["rule", "meta"])
def test_fit_identical_to_direct_fit(spec, train):
    fitter = IncrementalFitter()
    incremental = fitter.fit(spec, train, seed=None)
    direct = spec.build(seed=None).fit(train)
    assert learned_state_to_dict(incremental) == learned_state_to_dict(direct)


def test_repeated_fit_is_zero_delta(train):
    fitter = IncrementalFitter()
    fitter.fit(RULE_SPEC, train)
    fitter.fit(RULE_SPEC, train)
    assert fitter.fits == 2
    assert fitter.zero_delta_fits == 1


def test_prediction_window_grid_shares_one_miner(train):
    fitter = IncrementalFitter()
    for _, spec in META_SPEC.grid(
        "prediction_window", [10 * MINUTE, 20 * MINUTE, 30 * MINUTE]
    ):
        fitter.fit(spec, train)
    assert fitter.fits == 3
    assert fitter.zero_delta_fits == 2  # same recipe, same window
    assert fitter.peek_miner(META_SPEC) is not None


def test_sliding_windows_keep_identity(anl_events):
    fitter = IncrementalFitter()
    n = len(anl_events)
    for frac in (0.0, 0.2, 0.4):
        window = anl_events.select(slice(int(n * frac), int(n * (frac + 0.6))))
        incremental = fitter.fit(RULE_SPEC, window)
        direct = RULE_SPEC.build().fit(window)
        assert learned_state_to_dict(incremental) == learned_state_to_dict(
            direct
        )


def test_install_and_peek_miner(train):
    fitter = IncrementalFitter()
    assert fitter.peek_miner(RULE_SPEC) is None
    miner = IncrementalFitter().miner_for(RULE_SPEC)
    fitter.install_miner(RULE_SPEC, miner)
    assert fitter.peek_miner(RULE_SPEC) is miner
    assert fitter.miner_for(RULE_SPEC) is miner


# --------------------------------------------------------------------- #
# Engine integration: incremental runs reproduce plain runs bit for bit
# --------------------------------------------------------------------- #


def assert_same_result(plain, fast):
    assert plain.fold_metrics == fast.fold_metrics
    for a, b in zip(plain.fold_matches, fast.fold_matches):
        assert (a.warning_hit == b.warning_hit).all()
        assert (a.fatal_covered == b.fatal_covered).all()
        assert np.array_equal(a.lead_seconds, b.lead_seconds, equal_nan=True)


def test_cross_validate_incremental_identical(anl_events):
    plain = cross_validate(RULE_SPEC, anl_events, k=4)
    fast = cross_validate(RULE_SPEC, anl_events, k=4, incremental=True)
    assert_same_result(plain, fast)


def test_cross_validate_meta_incremental_identical(anl_events):
    plain = cross_validate(META_SPEC, anl_events, k=3, seed=9)
    fast = cross_validate(META_SPEC, anl_events, k=3, seed=9, incremental=True)
    assert_same_result(plain, fast)


def test_sweep_incremental_identical(anl_events):
    grid = RULE_SPEC.grid("rule_window", [10 * MINUTE, 20 * MINUTE])
    plain = sweep(grid, anl_events, k=3)
    fast = sweep(
        RULE_SPEC.grid("rule_window", [10 * MINUTE, 20 * MINUTE]),
        anl_events,
        k=3,
        incremental=True,
    )
    assert [p.window for p in plain] == [p.window for p in fast]
    for a, b in zip(plain, fast):
        assert a.precision == b.precision and a.recall == b.recall
        assert_same_result(a.result, b.result)


def test_incremental_env_default(anl_events, monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")
    fast = cross_validate(RULE_SPEC, anl_events, k=3)
    monkeypatch.delenv("REPRO_INCREMENTAL")
    plain = cross_validate(RULE_SPEC, anl_events, k=3)
    assert_same_result(plain, fast)


def test_incremental_with_cache_writes_identical_payloads(
    anl_events, tmp_path
):
    """Cache artifacts written through the fitter equal the plain ones."""
    plain_dir = tmp_path / "plain"
    fast_dir = tmp_path / "fast"
    cross_validate(RULE_SPEC, anl_events, k=3, cache_dir=plain_dir)
    cross_validate(
        RULE_SPEC, anl_events, k=3, cache_dir=fast_dir, incremental=True
    )
    plain_files = sorted(p.relative_to(plain_dir) for p in plain_dir.rglob("*.json"))
    fast_files = sorted(p.relative_to(fast_dir) for p in fast_dir.rglob("*.json"))
    assert plain_files == fast_files and plain_files
    for rel in plain_files:
        assert (plain_dir / rel).read_text() == (fast_dir / rel).read_text()
