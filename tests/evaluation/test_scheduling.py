"""Tests for repro.evaluation.scheduling (job rescue simulation)."""

import pytest

from repro.bgl.jobs import Job, JobTrace
from repro.bgl.topology import ANL_SPEC, Machine
from repro.evaluation.scheduling import (
    NODES_PER_MIDPLANE,
    simulate_rescue,
)
from repro.predictors.base import FailureWarning
from repro.ras.fields import Severity
from repro.ras.store import EventStore
from tests.conftest import make_event


@pytest.fixture
def machine():
    return Machine(ANL_SPEC)


def _fatal(time, location):
    return make_event(time=time, location=location, severity=Severity.FATAL,
                      entry="kernel panic: unrecoverable condition detected")


def _warning(issued, ckpt=120):
    return FailureWarning(issued_at=issued, horizon_start=issued + 1,
                          horizon_end=issued + 3600, confidence=0.8,
                          source="meta", detail="test")


def test_reactive_loss_hand_computed(machine):
    # One single-midplane job, killed 1000 s in, no warnings.
    trace = JobTrace(machine, [Job(1, 10_000, 20_000, (0,))])
    events = EventStore.from_events([_fatal(11_000, "R00-M0-N03-C07")])
    out = simulate_rescue(trace, events, [])
    assert out.jobs_hit == 1
    assert out.reactive_loss == 1000 * NODES_PER_MIDPLANE
    # No checkpoints: proactive loss equals reactive, zero overhead.
    assert out.proactive_loss == out.reactive_loss
    assert out.checkpoint_overhead == 0
    assert out.rescued == 0
    assert out.rescue_ratio == 0.0


def test_checkpoint_rescues_work(machine):
    trace = JobTrace(machine, [Job(1, 10_000, 20_000, (0,))])
    events = EventStore.from_events([_fatal(15_000, "R00-M0-N03-C07")])
    # Warning at 14_000, checkpoint completes at 14_120.
    out = simulate_rescue(trace, events, [_warning(14_000)],
                          checkpoint_cost=120)
    assert out.jobs_with_checkpoint == 1
    assert out.proactive_loss == (15_000 - 14_120) * NODES_PER_MIDPLANE
    # Overhead: one checkpoint of one 1-midplane job.
    assert out.checkpoint_overhead == 120 * NODES_PER_MIDPLANE
    assert out.rescued > 0
    assert 0 < out.rescue_ratio < 1


def test_checkpoint_after_failure_useless(machine):
    trace = JobTrace(machine, [Job(1, 10_000, 20_000, (0,))])
    events = EventStore.from_events([_fatal(15_000, "R00-M0-N03-C07")])
    # Checkpoint completes only at 15_080 — after the failure.
    out = simulate_rescue(trace, events, [_warning(14_960)],
                          checkpoint_cost=120)
    assert out.jobs_with_checkpoint == 0
    assert out.proactive_loss == out.reactive_loss
    assert out.rescued < 0  # paid overhead for nothing


def test_failure_on_idle_midplane_ignored(machine):
    trace = JobTrace(machine, [Job(1, 10_000, 20_000, (0,))])
    events = EventStore.from_events([_fatal(15_000, "R00-M1-N03-C07")])
    out = simulate_rescue(trace, events, [])
    assert out.jobs_hit == 0
    assert out.reactive_loss == 0


def test_system_wide_failure_ignored(machine):
    trace = JobTrace(machine, [Job(1, 10_000, 20_000, (0,))])
    events = EventStore.from_events([_fatal(15_000, "SYSTEM")])
    out = simulate_rescue(trace, events, [])
    assert out.jobs_hit == 0


def test_job_killed_once(machine):
    trace = JobTrace(machine, [Job(1, 10_000, 20_000, (0,))])
    events = EventStore.from_events([
        _fatal(15_000, "R00-M0-N03-C07"),
        _fatal(16_000, "R00-M0-N09-C01"),
    ])
    out = simulate_rescue(trace, events, [])
    assert out.jobs_hit == 1


def test_full_machine_job_width(machine):
    trace = JobTrace(machine, [Job(1, 0, 10_000, (0, 1))])
    events = EventStore.from_events([_fatal(5_000, "R00-M1-N00-C00")])
    out = simulate_rescue(trace, events, [])
    assert out.reactive_loss == 5_000 * 2 * NODES_PER_MIDPLANE


def test_overhead_counts_each_job_once(machine):
    trace = JobTrace(machine, [Job(1, 0, 10_000, (0, 1))])
    out = simulate_rescue(trace, EventStore.empty(), [_warning(5_000)],
                          checkpoint_cost=100)
    # One full-machine job: one checkpoint of 2 midplanes.
    assert out.checkpoint_overhead == 100 * 2 * NODES_PER_MIDPLANE


def test_overlapping_warnings_same_fatal_checkpoint_once(machine):
    """Regression: overlapping warnings matching the same fatal used to
    trigger one checkpoint each; deduped they trigger exactly one."""
    trace = JobTrace(machine, [Job(1, 10_000, 20_000, (0,))])
    events = EventStore.from_events([_fatal(15_000, "R00-M0-N03-C07")])
    # Both horizons contain the 15_000 fatal; only the earlier one acts.
    overlapping = [_warning(14_000), _warning(14_200)]
    out = simulate_rescue(trace, events, overlapping, checkpoint_cost=120)
    assert out.checkpoint_overhead == 120 * NODES_PER_MIDPLANE
    # The kept (earlier) warning's checkpoint sets the restart point.
    assert out.proactive_loss == (15_000 - 14_120) * NODES_PER_MIDPLANE


def test_false_alarms_still_pay_their_checkpoints(machine):
    """Dedupe only collapses warnings matching the same fatal; unmatched
    warnings each still cost a checkpoint."""
    trace = JobTrace(machine, [Job(1, 0, 100_000, (0,))])
    events = EventStore.from_events([_fatal(50_000, "R00-M0-N03-C07")])
    # Two false alarms (horizons end before the fatal) + two overlapping
    # true warnings -> 3 checkpoints total.
    warnings = [
        _warning(10_000), _warning(20_000),  # horizons end 13.6k/23.6k
        _warning(49_000), _warning(49_500),  # both cover 50_000
    ]
    out = simulate_rescue(trace, events, warnings, checkpoint_cost=120)
    assert out.checkpoint_overhead == 3 * 120 * NODES_PER_MIDPLANE


def test_dedupe_helper_keeps_earliest_per_fatal():
    import numpy as np

    from repro.evaluation.scheduling import dedupe_by_matched_fatal

    kept = dedupe_by_matched_fatal(
        [_warning(14_200), _warning(14_000)],
        np.array([15_000], dtype=np.int64),
    )
    assert [w.issued_at for w in kept] == [14_000]


def test_validation(machine):
    trace = JobTrace(machine, [])
    with pytest.raises(ValueError):
        simulate_rescue(trace, EventStore.empty(), [], checkpoint_cost=0)


def test_end_to_end_on_generated_log(small_anl_log, anl_events):
    """On the generated log with real meta warnings, prediction rescues a
    positive share of the reactively lost work."""
    from repro.meta.stacked import MetaLearner
    from repro.util.timeutil import MINUTE

    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_events)
    warnings = meta.predict(anl_events)
    out = simulate_rescue(
        small_anl_log.job_trace, anl_events, warnings, checkpoint_cost=60
    )
    assert out.jobs_hit > 0
    assert out.reactive_loss > 0
    assert out.rescued > 0
    assert out.jobs_with_checkpoint > 0
