"""Tests for repro.evaluation.metrics."""

import pytest

from repro.evaluation.metrics import Metrics, mean_metrics, micro_metrics


def test_basic_ratios():
    m = Metrics(n_warnings=10, tp_warnings=7, n_fatals=20, covered_fatals=8)
    assert m.precision == pytest.approx(0.7)
    assert m.recall == pytest.approx(0.4)
    assert m.fp_warnings == 3
    assert m.missed_fatals == 12


def test_f1():
    m = Metrics(10, 5, 10, 5)
    assert m.f1 == pytest.approx(0.5)
    z = Metrics(10, 0, 10, 0)
    assert z.f1 == 0.0


def test_degenerate_conventions():
    silent = Metrics(0, 0, 5, 0)
    assert silent.precision == 1.0  # no false alarms raised
    assert silent.recall == 0.0
    nothing_to_predict = Metrics(3, 0, 0, 0)
    assert nothing_to_predict.recall == 1.0


def test_validation():
    with pytest.raises(ValueError):
        Metrics(1, 2, 0, 0)
    with pytest.raises(ValueError):
        Metrics(0, 0, 1, 2)


def test_addition_pools_counts():
    a = Metrics(10, 5, 20, 10)
    b = Metrics(30, 15, 20, 10)
    c = a + b
    assert c.n_warnings == 40 and c.tp_warnings == 20
    assert c.n_fatals == 40 and c.covered_fatals == 20


def test_mean_metrics_macro_average():
    folds = [Metrics(10, 10, 10, 10), Metrics(10, 0, 10, 0)]
    p, r = mean_metrics(folds)
    assert p == pytest.approx(0.5)
    assert r == pytest.approx(0.5)


def test_mean_metrics_differs_from_micro():
    # Macro weights folds equally; micro weights by counts.
    folds = [Metrics(1, 1, 1, 1), Metrics(99, 0, 99, 0)]
    macro_p, _ = mean_metrics(folds)
    micro = micro_metrics(folds)
    assert macro_p == pytest.approx(0.5)
    assert micro.precision == pytest.approx(0.01)


def test_mean_metrics_requires_folds():
    with pytest.raises(ValueError):
        mean_metrics([])
