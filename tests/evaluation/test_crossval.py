"""Tests for repro.evaluation.crossval."""

import pytest

from repro.evaluation.crossval import (
    CVResult,
    cross_validate,
    fold_index_ranges,
    holdout_validate,
)
from repro.evaluation.metrics import Metrics, micro_metrics
from repro.evaluation.spec import PredictorSpec
from repro.predictors.base import Predictor
from repro.predictors.statistical import StatisticalPredictor
from repro.util.timeutil import HOUR, MINUTE


def test_fold_index_ranges_partition():
    ranges = fold_index_ranges(103, 10)
    assert len(ranges) == 10
    assert ranges[0][0] == 0 and ranges[-1][1] == 103
    # Contiguous, gap-free, sizes differ by at most one.
    sizes = []
    prev_end = 0
    for start, end in ranges:
        assert start == prev_end
        prev_end = end
        sizes.append(end - start)
    assert max(sizes) - min(sizes) <= 1


def test_fold_index_ranges_validation():
    with pytest.raises(ValueError):
        fold_index_ranges(100, 1)
    with pytest.raises(ValueError):
        fold_index_ranges(5, 10)


def test_fold_index_ranges_n_equals_k():
    """Degenerate but legal: every fold holds exactly one record."""
    ranges = fold_index_ranges(4, 4)
    assert ranges == [(0, 1), (1, 2), (2, 3), (3, 4)]


def test_fold_index_ranges_remainder_goes_to_leading_folds():
    ranges = fold_index_ranges(11, 3)
    assert ranges == [(0, 4), (4, 8), (8, 11)]
    sizes = [end - start for start, end in ranges]
    assert sizes == sorted(sizes, reverse=True)  # extras lead, never trail


def test_fold_index_ranges_k_below_two_rejected():
    for bad_k in (1, 0, -3):
        with pytest.raises(ValueError, match="k must be >= 2"):
            fold_index_ranges(100, bad_k)


class _CountingPredictor(Predictor):
    """Remembers the stores it saw; predicts nothing."""

    name = "counting"
    instances = []

    def __init__(self):
        super().__init__()
        self.train_len = None
        _CountingPredictor.instances.append(self)

    def fit(self, events):
        self.train_len = len(events)
        self._fitted = True
        return self

    def predict(self, events):
        self._check_fitted()
        return []


def test_cross_validate_fold_structure(anl_events):
    _CountingPredictor.instances = []
    result = cross_validate(_CountingPredictor, anl_events, k=5)
    assert result.k == 5
    assert len(_CountingPredictor.instances) == 5  # fresh predictor per fold
    n = len(anl_events)
    for p in _CountingPredictor.instances:
        assert p.train_len in (n - n // 5, n - n // 5 - 1)
    # Fatals across test folds partition all fatals.
    total_fatals = sum(m.n_fatals for m in result.fold_metrics)
    assert total_fatals == len(anl_events.fatal_events())


def test_cross_validate_averages(anl_events):
    result = cross_validate(
        lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        anl_events,
        k=5,
    )
    assert 0.0 <= result.precision <= 1.0
    assert 0.0 <= result.recall <= 1.0
    s = result.summary()
    assert s["k"] == 5
    assert s["fatals"] == len(anl_events.fatal_events())


def test_summary_reports_macro_and_micro(anl_events):
    """The headline figures are macro; pooled micro figures sit beside them
    and are consistent with the summed warning/fatal counts."""
    result = cross_validate(
        PredictorSpec.statistical(window=HOUR, lead=5 * MINUTE),
        anl_events,
        k=5,
    )
    s = result.summary()
    assert s["precision"] == result.precision
    assert s["recall"] == result.recall
    assert s["precision_micro"] == result.precision_micro
    assert s["recall_micro"] == result.recall_micro
    pooled = micro_metrics(result.fold_metrics)
    assert s["warnings"] == pooled.n_warnings
    assert s["fatals"] == pooled.n_fatals
    assert s["precision_micro"] == pooled.precision
    assert s["recall_micro"] == pooled.recall


def test_micro_differs_from_macro_on_uneven_folds():
    """Macro weighs each fold equally; micro weighs each event equally."""
    folds = [Metrics(10, 1, 10, 1), Metrics(1, 1, 1, 1)]
    result = CVResult(fold_metrics=folds, fold_matches=[])
    assert result.precision == pytest.approx(0.55)   # (0.1 + 1.0) / 2
    assert result.precision_micro == pytest.approx(2 / 11)
    assert result.recall == pytest.approx(0.55)
    assert result.recall_micro == pytest.approx(2 / 11)


def test_cross_validate_spec_fold_structure(anl_events):
    """The engine path partitions fatals exactly like the factory path."""
    result = cross_validate(PredictorSpec.rule(), anl_events, k=5)
    assert result.k == 5
    total_fatals = sum(m.n_fatals for m in result.fold_metrics)
    assert total_fatals == len(anl_events.fatal_events())


def test_holdout_validate_accepts_spec(anl_events):
    metrics, _ = holdout_validate(
        PredictorSpec.statistical(window=HOUR, lead=5 * MINUTE),
        anl_events,
        train_fraction=0.7,
    )
    legacy_metrics, _ = holdout_validate(
        lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        anl_events,
        train_fraction=0.7,
    )
    assert metrics == legacy_metrics


def test_holdout_validate(anl_events):
    metrics, match = holdout_validate(
        lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        anl_events,
        train_fraction=0.7,
    )
    assert metrics.n_fatals == match.metrics.n_fatals
    assert metrics.n_fatals > 0


def test_holdout_validation_errors(anl_events):
    with pytest.raises(ValueError):
        holdout_validate(lambda: StatisticalPredictor(), anl_events, 0.0)
