"""Tests for repro.evaluation.crossval."""

import pytest

from repro.evaluation.crossval import (
    cross_validate,
    fold_index_ranges,
    holdout_validate,
)
from repro.predictors.base import Predictor
from repro.predictors.statistical import StatisticalPredictor
from repro.util.timeutil import HOUR, MINUTE


def test_fold_index_ranges_partition():
    ranges = fold_index_ranges(103, 10)
    assert len(ranges) == 10
    assert ranges[0][0] == 0 and ranges[-1][1] == 103
    # Contiguous, gap-free, sizes differ by at most one.
    sizes = []
    prev_end = 0
    for start, end in ranges:
        assert start == prev_end
        prev_end = end
        sizes.append(end - start)
    assert max(sizes) - min(sizes) <= 1


def test_fold_index_ranges_validation():
    with pytest.raises(ValueError):
        fold_index_ranges(100, 1)
    with pytest.raises(ValueError):
        fold_index_ranges(5, 10)


class _CountingPredictor(Predictor):
    """Remembers the stores it saw; predicts nothing."""

    name = "counting"
    instances = []

    def __init__(self):
        super().__init__()
        self.train_len = None
        _CountingPredictor.instances.append(self)

    def fit(self, events):
        self.train_len = len(events)
        self._fitted = True
        return self

    def predict(self, events):
        self._check_fitted()
        return []


def test_cross_validate_fold_structure(anl_events):
    _CountingPredictor.instances = []
    result = cross_validate(_CountingPredictor, anl_events, k=5)
    assert result.k == 5
    assert len(_CountingPredictor.instances) == 5  # fresh predictor per fold
    n = len(anl_events)
    for p in _CountingPredictor.instances:
        assert p.train_len in (n - n // 5, n - n // 5 - 1)
    # Fatals across test folds partition all fatals.
    total_fatals = sum(m.n_fatals for m in result.fold_metrics)
    assert total_fatals == len(anl_events.fatal_events())


def test_cross_validate_averages(anl_events):
    result = cross_validate(
        lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        anl_events,
        k=5,
    )
    assert 0.0 <= result.precision <= 1.0
    assert 0.0 <= result.recall <= 1.0
    s = result.summary()
    assert s["k"] == 5
    assert s["fatals"] == len(anl_events.fatal_events())


def test_holdout_validate(anl_events):
    metrics, match = holdout_validate(
        lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        anl_events,
        train_fraction=0.7,
    )
    assert metrics.n_fatals == match.metrics.n_fatals
    assert metrics.n_fatals > 0


def test_holdout_validation_errors(anl_events):
    with pytest.raises(ValueError):
        holdout_validate(lambda: StatisticalPredictor(), anl_events, 0.0)
