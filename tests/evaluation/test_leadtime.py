"""Tests for repro.evaluation.leadtime."""

import math

import numpy as np
import pytest

from repro.evaluation.leadtime import (
    LeadTimePoint,
    format_lead_profile,
    lead_time_profile,
    lead_time_summary,
)
from repro.evaluation.matching import MatchResult, match_warnings
from repro.evaluation.metrics import Metrics


def _match(leads, n_fatals=None):
    leads = np.array(leads, dtype=float)
    n = n_fatals if n_fatals is not None else leads.size
    covered = ~np.isnan(leads)
    return MatchResult(
        metrics=Metrics(0, 0, n, int(covered.sum())),
        warning_hit=np.zeros(0, dtype=bool),
        fatal_covered=covered,
        lead_seconds=leads,
    )


def test_profile_known_values():
    # Leads: 30 s, 120 s, 600 s, one uncovered.
    m = _match([30, 120, 600, np.nan])
    points = lead_time_profile(m, leads=[60, 300])
    assert points[0].min_lead_minutes == 1
    assert points[0].actionable_recall == pytest.approx(2 / 4)
    assert points[0].coverage_retention == pytest.approx(2 / 3)
    assert points[1].actionable_recall == pytest.approx(1 / 4)


def test_profile_monotone_decreasing():
    m = _match([30, 120, 600, 1800, np.nan, np.nan])
    points = lead_time_profile(m)
    ar = [p.actionable_recall for p in points]
    assert ar == sorted(ar, reverse=True)


def test_profile_no_failures():
    m = _match([], n_fatals=0)
    points = lead_time_profile(m, leads=[60])
    assert points[0].actionable_recall == 1.0


def test_profile_all_uncovered():
    m = _match([np.nan, np.nan])
    [p] = lead_time_profile(m, leads=[60])
    assert p.actionable_recall == 0.0
    assert p.coverage_retention == 1.0  # vacuous: nothing covered


def test_summary_statistics():
    m = _match([60, 120, 180, np.nan])
    s = lead_time_summary(m)
    assert s["covered"] == 3
    assert s["median"] == pytest.approx(120)
    assert s["mean"] == pytest.approx(120)


def test_summary_empty():
    s = lead_time_summary(_match([np.nan]))
    assert s["covered"] == 0
    assert math.isnan(s["mean"])


def test_format_profile():
    text = format_lead_profile(
        [LeadTimePoint(min_lead=60, actionable_recall=0.5,
                       coverage_retention=0.8)]
    )
    assert "actionable recall" in text
    assert "0.500" in text


def test_end_to_end_on_meta(anl_events):
    """Structural properties of leads on a real prediction run (the small
    session fixture has only a handful of test failures, so assert shape,
    not magnitude — the benches measure magnitude at scale)."""
    from repro.meta.stacked import MetaLearner
    from repro.util.timeutil import MINUTE

    cut = int(len(anl_events) * 0.5)
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_events.select(slice(0, cut)))
    test = anl_events.select(slice(cut, len(anl_events)))
    match = match_warnings(meta.predict(test), test)
    assert match.metrics.covered_fatals > 0
    points = lead_time_profile(match, leads=[30, 60, 5 * MINUTE])
    ar = [p.actionable_recall for p in points]
    assert ar == sorted(ar, reverse=True)
    assert ar[0] > 0.0
    summary = lead_time_summary(match)
    assert summary["covered"] == match.metrics.covered_fatals
    assert summary["mean"] > 0
