"""Tests for repro.evaluation.sweep."""

import pytest

from repro.evaluation.spec import PredictorSpec
from repro.evaluation.sweep import (
    DEFAULT_WINDOWS,
    SweepPoint,
    format_sweep,
    prediction_window_sweep,
    select_rule_window,
    sweep,
)
from repro.predictors.rulebased import RuleBasedPredictor
from repro.util.timeutil import MINUTE


def test_default_windows_are_papers():
    assert DEFAULT_WINDOWS[0] == 5 * MINUTE
    assert DEFAULT_WINDOWS[-1] == 60 * MINUTE


def test_sweep_runs_each_window(anl_events):
    windows = [10 * MINUTE, 30 * MINUTE]
    points = prediction_window_sweep(
        lambda w: RuleBasedPredictor(
            rule_window=15 * MINUTE, prediction_window=w
        ),
        anl_events,
        windows=windows,
        k=4,
    )
    assert [p.window for p in points] == windows
    assert all(0 <= p.precision <= 1 and 0 <= p.recall <= 1 for p in points)
    assert points[0].window_minutes == 10


def test_rule_recall_rises_with_window(anl_events):
    """The paper's Figure-4 trend on the small log."""
    points = prediction_window_sweep(
        lambda w: RuleBasedPredictor(
            rule_window=15 * MINUTE, prediction_window=w
        ),
        anl_events,
        windows=[5 * MINUTE, 60 * MINUTE],
        k=4,
    )
    assert points[1].recall >= points[0].recall


def test_rule_window_sweep_shim_removed():
    """The PR-3 deprecation shim is gone; rule-window sweeps go through
    ``sweep(spec.grid("rule_window", ...))``."""
    import repro.evaluation
    import repro.evaluation.sweep

    assert not hasattr(repro.evaluation.sweep, "rule_window_sweep")
    assert not hasattr(repro.evaluation, "rule_window_sweep")
    assert "rule_window_sweep" not in repro.evaluation.__all__


def test_rule_window_sweep_via_spec_grid(anl_events):
    """The migration target for old rule_window_sweep callers."""
    windows = [10 * MINUTE, 20 * MINUTE]
    spec = PredictorSpec.rule(prediction_window=30 * MINUTE)
    points = sweep(spec.grid("rule_window", windows), anl_events, k=4)
    assert [p.window for p in points] == windows
    assert all(0 <= p.precision <= 1 and 0 <= p.recall <= 1 for p in points)


def test_spec_sweep_matches_factory_sweep(anl_events):
    """The engine-backed grid sweep reproduces the legacy path exactly."""
    windows = [10 * MINUTE, 30 * MINUTE]
    legacy = prediction_window_sweep(
        lambda w: RuleBasedPredictor(
            rule_window=15 * MINUTE, prediction_window=w
        ),
        anl_events,
        windows=windows,
        k=4,
    )
    spec = PredictorSpec.rule(rule_window=15 * MINUTE)
    modern = sweep(spec.grid("prediction_window", windows), anl_events, k=4)
    assert [(p.window, p.precision, p.recall) for p in legacy] == [
        (p.window, p.precision, p.recall) for p in modern
    ]


def test_prediction_window_sweep_accepts_spec(anl_events):
    windows = [10 * MINUTE, 20 * MINUTE]
    spec = PredictorSpec.rule(rule_window=15 * MINUTE)
    points = prediction_window_sweep(spec, anl_events, windows=windows, k=4)
    assert [p.window for p in points] == windows


def test_sweep_rejects_empty_grid(anl_events):
    with pytest.raises(ValueError, match="empty sweep grid"):
        sweep([], anl_events, k=4)


def _pt(window, precision, recall):
    from repro.evaluation.crossval import CVResult

    return SweepPoint(window=window, precision=precision, recall=recall,
                      result=CVResult([], []))


def test_select_rule_window_best_precision_then_recall():
    points = [
        _pt(300, 0.90, 0.30),
        _pt(900, 0.90, 0.45),   # same rounded precision, better recall
        _pt(1800, 0.80, 0.60),
    ]
    assert select_rule_window(points).window == 900


def test_select_rule_window_rounds_precision():
    points = [
        _pt(300, 0.901, 0.30),
        _pt(900, 0.899, 0.55),  # rounds to 0.90 too; recall breaks the tie
    ]
    assert select_rule_window(points).window == 900


def test_select_rule_window_empty():
    with pytest.raises(ValueError):
        select_rule_window([])


def test_sweep_point_f1():
    assert _pt(1, 0.5, 0.5).f1 == pytest.approx(0.5)
    assert _pt(1, 0.0, 0.0).f1 == 0.0


def test_format_sweep():
    text = format_sweep([_pt(300, 0.9, 0.3)], title="demo")
    assert "demo" in text
    assert "0.9000" in text
