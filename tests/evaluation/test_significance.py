"""Tests for repro.evaluation.significance."""

import pytest

from repro.evaluation.crossval import CVResult
from repro.evaluation.metrics import Metrics
from repro.evaluation.significance import (
    bootstrap_ci,
    paired_bootstrap_pvalue,
)


def _cv(precisions_recalls):
    metrics = [
        Metrics(n_warnings=100, tp_warnings=int(p * 100),
                n_fatals=100, covered_fatals=int(r * 100))
        for p, r in precisions_recalls
    ]
    return CVResult(fold_metrics=metrics, fold_matches=[])


def test_ci_contains_point():
    cv = _cv([(0.8, 0.4), (0.7, 0.5), (0.9, 0.45), (0.75, 0.42)])
    ci = bootstrap_ci(cv, "recall", seed=1)
    assert ci.lower <= ci.point <= ci.upper
    assert ci.point == pytest.approx(0.4425)
    assert 0 < ci.width < 0.2


def test_ci_degenerate_identical_folds():
    cv = _cv([(0.8, 0.5)] * 6)
    ci = bootstrap_ci(cv, "recall", seed=1)
    assert ci.width == pytest.approx(0.0, abs=1e-12)
    assert ci.point == pytest.approx(0.5)


def test_ci_level_widens_interval():
    cv = _cv([(0.8, 0.2), (0.8, 0.8), (0.8, 0.4), (0.8, 0.6), (0.8, 0.5)])
    narrow = bootstrap_ci(cv, "recall", level=0.5, seed=2)
    wide = bootstrap_ci(cv, "recall", level=0.99, seed=2)
    assert wide.width > narrow.width


def test_ci_metric_selection():
    cv = _cv([(0.8, 0.4), (0.6, 0.4)])
    assert bootstrap_ci(cv, "precision", seed=0).point == pytest.approx(0.7)
    f1 = bootstrap_ci(cv, "f1", seed=0)
    assert 0 < f1.point < 1


def test_ci_validation():
    cv = _cv([(0.8, 0.4)])
    with pytest.raises(ValueError, match="unknown metric"):
        bootstrap_ci(cv, "auc")
    with pytest.raises(ValueError):
        bootstrap_ci(cv, "recall", level=1.5)
    with pytest.raises(ValueError):
        bootstrap_ci(cv, "recall", resamples=10)
    with pytest.raises(ValueError, match="no folds"):
        bootstrap_ci(CVResult([], []), "recall")


def test_ci_deterministic_by_seed():
    cv = _cv([(0.8, 0.2), (0.8, 0.8), (0.8, 0.4)])
    a = bootstrap_ci(cv, "recall", seed=7)
    b = bootstrap_ci(cv, "recall", seed=7)
    assert (a.lower, a.upper) == (b.lower, b.upper)


def test_paired_pvalue_clear_winner():
    a = _cv([(0.8, r) for r in (0.7, 0.72, 0.69, 0.71, 0.73, 0.7)])
    b = _cv([(0.8, r) for r in (0.4, 0.42, 0.39, 0.41, 0.43, 0.4)])
    assert paired_bootstrap_pvalue(a, b, "recall", seed=3) < 0.01
    # And the reverse direction is clearly not supported.
    assert paired_bootstrap_pvalue(b, a, "recall", seed=3) > 0.9


def test_paired_pvalue_no_difference():
    a = _cv([(0.8, 0.5), (0.8, 0.6), (0.8, 0.4), (0.8, 0.55)])
    p = paired_bootstrap_pvalue(a, a, "recall", seed=3)
    assert p == pytest.approx(1.0)  # diff identically zero -> always <= 0


def test_paired_pvalue_requires_pairing():
    a = _cv([(0.8, 0.5)] * 4)
    b = _cv([(0.8, 0.5)] * 5)
    with pytest.raises(ValueError, match="paired"):
        paired_bootstrap_pvalue(a, b)


def test_on_real_cv_meta_vs_statistical(anl_events):
    """Meta's recall edge over the statistical base is significant even on
    the small fixture."""
    from repro.evaluation.crossval import cross_validate
    from repro.meta.stacked import MetaLearner
    from repro.predictors.statistical import StatisticalPredictor
    from repro.util.timeutil import HOUR, MINUTE

    meta = cross_validate(
        lambda: MetaLearner(prediction_window=30 * MINUTE,
                            rule_window=15 * MINUTE),
        anl_events, k=5,
    )
    stat = cross_validate(
        lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
        anl_events, k=5,
    )
    ci = bootstrap_ci(meta, "recall", seed=1)
    assert 0.0 <= ci.lower <= ci.upper <= 1.0
    p = paired_bootstrap_pvalue(meta, stat, "recall", seed=1)
    assert p < 0.2  # small fixture: directional, not strict
