"""Tests for repro.evaluation.calibration."""

import pytest

from repro.evaluation.calibration import (
    CalibrationMeasurement,
    TargetCheck,
    compare_to_paper,
    measure_profile,
)
from repro.synth.profiles import anl_profile


@pytest.fixture(scope="module")
def measurement():
    # Small scale + few folds: exercises the harness, not the calibration.
    return measure_profile(anl_profile(), scale=0.05, seeds=(3,), k=4)


def test_measure_profile_fields(measurement):
    assert measurement.profile == "ANL"
    assert measurement.seeds == (3,)
    assert 0.9 <= measurement.fatal_recovery <= 1.0
    for name, value in measurement.as_rows():
        if name.endswith(("precision", "recall", "fraction")) or \
                name.endswith(("_5", "_60")):
            assert 0.0 <= value <= 1.0, (name, value)
    assert measurement.rules_mined >= 1


def test_meta_dominates_in_measurement(measurement):
    assert measurement.meta_recall_60 >= measurement.rule_recall_60 - 0.05
    assert measurement.meta_recall_60 >= measurement.stat_recall - 0.05


def test_compare_to_paper(measurement):
    checks = compare_to_paper(measurement, tolerance=1.0)  # always ok
    assert {c.name for c in checks} == {"stat_precision", "stat_recall"}
    assert all(c.ok for c in checks)
    tight = compare_to_paper(measurement, tolerance=0.0)
    assert any(not c.ok for c in tight)
    assert tight[0].delta == pytest.approx(
        measurement.stat_precision - 0.5157, abs=1e-9
    )


def test_compare_unknown_profile():
    m = CalibrationMeasurement(profile="LLNL", scale=0.1, seeds=(1,))
    with pytest.raises(KeyError):
        compare_to_paper(m)


def test_target_check_semantics():
    c = TargetCheck("x", measured=0.50, target=0.52, tolerance=0.05)
    assert c.ok and c.delta == pytest.approx(-0.02)
    assert not TargetCheck("x", 0.3, 0.52, 0.05).ok
