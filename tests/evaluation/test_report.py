"""Tests for repro.evaluation.report (ASCII rendering)."""

import numpy as np
import pytest

from repro.evaluation.crossval import CVResult
from repro.evaluation.report import (
    ascii_chart,
    cdf_chart,
    comparison_table,
    sweep_chart,
)
from repro.evaluation.sweep import SweepPoint


def _pt(window, p, r):
    return SweepPoint(window=window, precision=p, recall=r,
                      result=CVResult([], []))


def test_ascii_chart_dimensions():
    chart = ascii_chart([0, 1, 2], {"y": [0.0, 0.5, 1.0]},
                        width=40, height=8, y_range=(0, 1))
    lines = chart.splitlines()
    data_lines = [ln for ln in lines if "|" in ln]
    assert len(data_lines) == 8
    assert all(len(ln) <= 8 + 1 + 40 for ln in data_lines)


def test_ascii_chart_places_extremes():
    chart = ascii_chart([0, 1], {"y": [0.0, 1.0]}, width=20, height=5,
                        y_range=(0, 1))
    lines = [ln for ln in chart.splitlines() if "|" in ln]
    assert "*" in lines[0]       # y=1 on the top row
    assert "*" in lines[-1]      # y=0 on the bottom row


def test_ascii_chart_multiple_series_markers():
    chart = ascii_chart([0, 1], {"a": [0.1, 0.1], "b": [0.9, 0.9]},
                        y_range=(0, 1))
    assert "*" in chart and "o" in chart
    assert "*=a" in chart and "o=b" in chart


def test_ascii_chart_validation():
    with pytest.raises(ValueError):
        ascii_chart([0, 1], {})
    with pytest.raises(ValueError):
        ascii_chart([], {"y": []})
    with pytest.raises(ValueError):
        ascii_chart([0], {"y": [1.0]}, y_range=(1, 0))


def test_ascii_chart_flat_series():
    chart = ascii_chart([0, 1], {"y": [0.5, 0.5]})
    assert "*" in chart


def test_ascii_chart_skips_nan():
    chart = ascii_chart([0, 1, 2], {"y": [0.2, float("nan"), 0.8]},
                        y_range=(0, 1))
    data_area = "\n".join(ln for ln in chart.splitlines() if "|" in ln)
    assert data_area.count("*") == 2


def test_sweep_chart():
    points = [_pt(300, 0.9, 0.3), _pt(3600, 0.7, 0.6)]
    chart = sweep_chart(points, title="demo")
    assert chart.startswith("demo")
    assert "precision" in chart and "recall" in chart
    with pytest.raises(ValueError):
        sweep_chart([])


def test_cdf_chart():
    grid = np.array([300.0, 600.0, 3600.0])
    chart = cdf_chart(grid, [0.1, 0.3, 0.8], title="cdf")
    assert "minutes since a failure" in chart
    assert chart.startswith("cdf")


def test_comparison_table():
    table = comparison_table(
        {"meta": (0.8, 0.6), "never": (0.0, 0.0)}, title="cmp"
    )
    assert "cmp" in table
    assert "0.8000" in table
    assert "0.6857" in table  # f1 of (0.8, 0.6)
    assert table.splitlines()[-1].startswith("never")


def test_cli_report_runs(tmp_path, capsys):
    from repro.cli.main import main

    path = tmp_path / "log.log"
    assert main(["generate", "--profile", "SDSC", "--scale", "0.02",
                 "--seed", "3", "-o", str(path)]) == 0
    capsys.readouterr()
    rc = main(["report", str(path), "--rule-window", "25",
               "--folds", "4", "--windows", "15,60"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Failure-gap CDF" in out
    assert "Method comparison" in out
    assert "Meta-learner sweep" in out
    assert "==>" in out
