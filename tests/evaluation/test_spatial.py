"""Tests for repro.evaluation.spatial."""

import math

import pytest

from repro.bgl.locations import LocationKind
from repro.evaluation.spatial import (
    colocated_fraction,
    failure_counts_by_location,
    hotspots,
    spatial_concentration,
)
from repro.ras.fields import Severity
from repro.ras.store import EventStore
from tests.conftest import make_event


def _fatal(time, location):
    return make_event(
        time=time, location=location, severity=Severity.FATAL,
        entry="kernel panic: unrecoverable condition detected",
    )


@pytest.fixture
def skewed_store():
    """9 failures on one node card, 1 on another, plus a SYSTEM event."""
    events = [
        _fatal(1000 + 900 * k, f"R00-M0-N00-C{k:02d}") for k in range(9)
    ]
    events.append(_fatal(20_000, "R00-M1-N05-C00"))
    events.append(_fatal(30_000, "SYSTEM"))
    events.append(make_event(time=40_000, entry="noise"))  # non-fatal ignored
    return EventStore.from_events(events)


def test_counts_by_midplane(skewed_store):
    counts = failure_counts_by_location(skewed_store, LocationKind.MIDPLANE)
    assert counts["R00-M0"] == 9
    assert counts["R00-M1"] == 1
    assert counts["(other)"] == 1  # the SYSTEM event


def test_counts_by_nodecard(skewed_store):
    counts = failure_counts_by_location(skewed_store, LocationKind.NODECARD)
    assert counts["R00-M0-N00"] == 9
    assert counts["R00-M1-N05"] == 1


def test_counts_empty():
    assert failure_counts_by_location(EventStore.empty()) == {}


def test_hotspots_ranked(skewed_store):
    top = hotspots(skewed_store, LocationKind.NODECARD, top=5)
    assert top[0] == ("R00-M0-N00", 9)
    assert len(top) == 2  # "(other)" excluded


def test_concentration_skew(skewed_store):
    g = spatial_concentration(skewed_store, LocationKind.NODECARD)
    assert 0.3 < g <= 1.0


def test_concentration_even():
    events = [
        _fatal(1000 * k, f"R00-M0-N{k:02d}-C00") for k in range(8)
    ]
    g = spatial_concentration(EventStore.from_events(events),
                              LocationKind.NODECARD)
    assert g == pytest.approx(0.0, abs=1e-9)


def test_concentration_empty():
    assert spatial_concentration(EventStore.empty()) == 0.0


def test_colocated_fraction(skewed_store):
    # The nine N00 failures are 900 s apart and share a midplane; the later
    # events are far in time.
    frac = colocated_fraction(skewed_store, within_seconds=1000,
                              level=LocationKind.MIDPLANE)
    assert frac == pytest.approx(1.0)


def test_colocated_fraction_no_close_pairs(skewed_store):
    assert math.isnan(
        colocated_fraction(skewed_store, within_seconds=1,
                           level=LocationKind.MIDPLANE)
    )


def test_colocated_fraction_few_events():
    store = EventStore.from_events([_fatal(1, "R00-M0-N00-C00")])
    assert math.isnan(colocated_fraction(store, 100))


def test_on_generated_log(anl_events):
    """Generated logs have sensible spatial structure at every level."""
    counts = failure_counts_by_location(anl_events, LocationKind.MIDPLANE)
    assert sum(counts.values()) == len(anl_events.fatal_events())
    g = spatial_concentration(anl_events, LocationKind.NODECARD)
    assert 0.0 <= g < 0.9
