"""Tests for repro.evaluation.costmodel."""

import numpy as np
import pytest

from repro.evaluation.costmodel import (
    CheckpointPolicy,
    breakeven_precision,
    evaluate_policy,
)
from repro.evaluation.matching import MatchResult
from repro.evaluation.metrics import Metrics


def _match(leads, n_warnings=0, tp=0):
    leads = np.array(leads, dtype=float)
    covered = ~np.isnan(leads)
    return MatchResult(
        metrics=Metrics(n_warnings, tp, leads.size, int(covered.sum())),
        warning_hit=np.zeros(n_warnings, dtype=bool),
        fatal_covered=covered,
        lead_seconds=leads,
    )


POLICY = CheckpointPolicy(interval=3600, checkpoint_cost=300, restart_cost=600)


def test_policy_validation():
    with pytest.raises(ValueError):
        CheckpointPolicy(interval=0)
    with pytest.raises(ValueError):
        CheckpointPolicy(interval=100, checkpoint_cost=100)


def test_baseline_cost_hand_computed():
    # No failures, no warnings: only periodic checkpoints.
    report = evaluate_policy(_match([]), POLICY, period_seconds=36_000)
    assert report.baseline_cost == pytest.approx(10 * 300)
    assert report.predicted_cost == pytest.approx(10 * 300)
    assert report.saving == 0.0


def test_actionable_failure_saves_rollback():
    # One failure with 20 min lead: proactive checkpoint fits (300 s), the
    # residual rollback is 1200-300=900 < 1800 baseline rollback.
    m = _match([1200.0], n_warnings=1, tp=1)
    report = evaluate_policy(m, POLICY, period_seconds=36_000)
    assert report.actionable_failures == 1
    assert report.unactionable_failures == 0
    # Baseline: 3000 + (1800+600); predicted: 3000 + 900 + 600 + 1*300.
    assert report.baseline_cost == pytest.approx(3000 + 2400)
    assert report.predicted_cost == pytest.approx(3000 + 900 + 600 + 300)
    assert report.saving == pytest.approx(600)
    assert 0 < report.saving_fraction < 1


def test_insufficient_lead_is_unactionable():
    # 100 s of notice < 300 s checkpoint cost: behaves as baseline plus the
    # wasted checkpoint.
    m = _match([100.0], n_warnings=1, tp=1)
    report = evaluate_policy(m, POLICY, period_seconds=36_000)
    assert report.actionable_failures == 0
    assert report.saving == pytest.approx(-300)


def test_false_alarms_cost_checkpoints():
    m = _match([np.nan], n_warnings=5, tp=0)
    report = evaluate_policy(m, POLICY, period_seconds=36_000)
    assert report.false_alarm_checkpoints == 5
    assert report.saving == pytest.approx(-5 * 300)


def test_residual_rollback_capped_at_periodic():
    # Huge lead: the proactive checkpoint happened long before the failure,
    # but the periodic net still bounds the rollback.
    m = _match([30_000.0], n_warnings=1, tp=1)
    report = evaluate_policy(m, POLICY, period_seconds=360_000)
    # Residual = min(30000-300, 1800) = 1800 -> no rollback saving, and the
    # extra checkpoint makes it a net loss.
    assert report.saving == pytest.approx(-300)


def test_overlapping_warnings_on_same_fatal_charged_once():
    """Regression: two warnings matching the same fatal used to cost two
    proactive checkpoints; deduped by matched-failure id they cost one."""
    m = _match([1200.0], n_warnings=2, tp=2)
    m.warning_fatal = np.array([0, 0], dtype=np.int64)  # both hit fatal #0
    report = evaluate_policy(m, POLICY, period_seconds=36_000)
    # Predicted: 3000 periodic + 900 residual + 600 restart + ONE checkpoint.
    assert report.predicted_cost == pytest.approx(3000 + 900 + 600 + 300)
    # Distinct fatals still pay one checkpoint each.
    m2 = _match([1200.0, 1200.0], n_warnings=2, tp=2)
    m2.warning_fatal = np.array([0, 1], dtype=np.int64)
    report2 = evaluate_policy(m2, POLICY, period_seconds=36_000)
    assert report2.predicted_cost == pytest.approx(
        3000 + 2 * 900 + 2 * 600 + 2 * 300
    )


def test_without_warning_fatal_falls_back_to_tp_count():
    """Hand-built MatchResults (no warning_fatal) keep the legacy charge."""
    m = _match([1200.0], n_warnings=2, tp=2)
    assert m.warning_fatal is None
    report = evaluate_policy(m, POLICY, period_seconds=36_000)
    assert report.predicted_cost == pytest.approx(3000 + 900 + 600 + 2 * 300)


def test_match_warnings_populates_warning_fatal(anl_events):
    from repro.evaluation.matching import match_warnings
    from repro.predictors.base import FailureWarning

    t0 = int(anl_events.fatal_events().times[0])
    w = FailureWarning(issued_at=t0 - 100, horizon_start=t0 - 50,
                       horizon_end=t0 + 50, confidence=0.9,
                       source="meta", detail="t")
    match = match_warnings([w, w], anl_events)
    assert match.warning_fatal is not None
    assert match.warning_fatal.shape == (2,)
    assert match.warning_fatal[0] == match.warning_fatal[1] >= 0


def test_breakeven_precision():
    assert breakeven_precision(POLICY, mean_lead=100) == 1.0
    b = breakeven_precision(POLICY, mean_lead=1200)
    assert b == pytest.approx(300 / 1800)


def test_end_to_end_prediction_pays(anl_events):
    """On the ANL log, the meta-learner's warnings save computation."""
    from repro.evaluation.matching import match_warnings
    from repro.meta.stacked import MetaLearner
    from repro.util.timeutil import MINUTE

    # In-sample on the whole small store: this exercises the cost-model
    # mechanics with enough covered failures; out-of-sample magnitude is the
    # cost-model bench's job.
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_events)
    match = match_warnings(meta.predict(anl_events), anl_events)
    period = float(anl_events.times[-1] - anl_events.times[0])
    report = evaluate_policy(
        match, CheckpointPolicy(interval=3600, checkpoint_cost=60,
                                restart_cost=300),
        period_seconds=period,
    )
    assert report.actionable_failures > 0
    assert report.saving > 0, "prediction must pay on this workload"
