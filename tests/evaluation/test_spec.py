"""Tests for repro.evaluation.spec."""

import pickle

import pytest

from repro.core.pipeline import ThreePhasePredictor
from repro.evaluation.spec import (
    PredictorSpec,
    SpecError,
    registered_spec_kinds,
    spec_kind,
)
from repro.meta.stacked import MetaLearner
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import HOUR, MINUTE


def test_builtin_kinds_registered():
    assert set(registered_spec_kinds()) >= {
        "statistical", "rule", "meta", "three-phase",
    }


def test_build_each_kind():
    assert isinstance(PredictorSpec.statistical().build(), StatisticalPredictor)
    assert isinstance(PredictorSpec.rule().build(), RuleBasedPredictor)
    assert isinstance(PredictorSpec.meta().build(), MetaLearner)
    assert isinstance(PredictorSpec.three_phase().build(), ThreePhasePredictor)


def test_params_are_normalized_to_full_sorted_set():
    """Explicit defaults and omitted defaults produce identical specs."""
    a = PredictorSpec.rule(rule_window=900.0)
    b = PredictorSpec.rule(rule_window=900.0, min_support=0.04)
    assert a == b
    assert a.token() == b.token()
    names = [name for name, _ in a.params]
    assert names == sorted(names)


def test_unknown_kind_and_param_rejected():
    with pytest.raises(SpecError, match="unknown spec kind"):
        PredictorSpec.of("nonesuch")
    with pytest.raises(SpecError, match="unknown parameters"):
        PredictorSpec.rule(banana=1)


def test_param_values_must_be_primitive():
    with pytest.raises(SpecError, match="JSON-stable primitive"):
        PredictorSpec.rule(rule_window=[900.0])


def test_spec_pickles_and_hashes():
    spec = PredictorSpec.meta(prediction_window=30 * MINUTE)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert hash(clone) == hash(spec)
    assert clone.token() == spec.token()


def test_build_applies_parameters():
    spec = PredictorSpec.rule(
        rule_window=10 * MINUTE,
        prediction_window=20 * MINUTE,
        min_support=0.1,
    )
    rb = spec.build()
    assert rb.rule_window == 10 * MINUTE
    assert rb.prediction_window == 20 * MINUTE
    assert rb.min_support == 0.1


def test_meta_build_wires_base_predictors():
    spec = PredictorSpec.meta(
        prediction_window=20 * MINUTE,
        rule_window=10 * MINUTE,
        statistical_window=2 * HOUR,
    )
    meta = spec.build()
    assert meta.prediction_window == 20 * MINUTE
    assert meta.rulebased.rule_window == 10 * MINUTE
    assert meta.rulebased.prediction_window == 20 * MINUTE
    assert meta.statistical.window == 2 * HOUR


def test_statistical_categories_roundtrip():
    spec = PredictorSpec.statistical(categories="NETWORK,IOSTREAM")
    sp = spec.build()
    assert sp.forced_categories == (
        MainCategory.NETWORK, MainCategory.IOSTREAM,
    )


def test_with_params_and_get():
    spec = PredictorSpec.rule(rule_window=900.0)
    derived = spec.with_params(rule_window=600.0)
    assert derived.get("rule_window") == 600.0
    assert spec.get("rule_window") == 900.0  # original untouched
    assert derived.get("min_support") == spec.get("min_support")


def test_grid_varies_one_parameter():
    spec = PredictorSpec.rule()
    grid = spec.grid("prediction_window", [600, 1200])
    assert [w for w, _ in grid] == [600.0, 1200.0]
    assert [s.get("prediction_window") for _, s in grid] == [600, 1200]
    assert all(s.get("rule_window") == spec.get("rule_window") for _, s in grid)


def test_fit_token_ignores_predict_only_params():
    a = PredictorSpec.rule(prediction_window=600.0)
    b = PredictorSpec.rule(prediction_window=3600.0)
    assert a.token() != b.token()
    assert a.fit_token() == b.fit_token()
    # meta: prediction_window is predict-only there too
    am = PredictorSpec.meta(prediction_window=600.0)
    bm = PredictorSpec.meta(prediction_window=3600.0)
    assert am.fit_token() == bm.fit_token()


def test_fit_token_tracks_fit_params():
    a = PredictorSpec.rule(min_support=0.04)
    b = PredictorSpec.rule(min_support=0.08)
    assert a.fit_token() != b.fit_token()


def test_tokens_are_stable_across_processes():
    """Content hashes must not depend on interpreter state (e.g. PYTHONHASHSEED)."""
    spec = PredictorSpec.meta()
    assert spec.token() == PredictorSpec.meta().token()
    assert len(spec.token()) == 64
    assert spec.token() != spec.fit_token()


def test_spec_kind_metadata():
    entry = spec_kind("rule")
    assert "rule_window" in entry.fit_params
    assert "prediction_window" not in entry.fit_params
    assert not entry.seeded
    assert not PredictorSpec.rule().seeded
