"""Tests for repro.bgl.topology."""

import pytest

from repro.bgl.locations import location_kind, LocationKind
from repro.bgl.topology import ANL_SPEC, SDSC_SPEC, Machine, MachineSpec


def test_anl_spec_matches_paper():
    assert ANL_SPEC.compute_nodes == 1024
    assert ANL_SPEC.io_nodes == 32


def test_sdsc_spec_matches_paper():
    assert SDSC_SPEC.compute_nodes == 1024
    assert SDSC_SPEC.io_nodes == 128  # I/O rich configuration


def test_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec(racks=0)
    with pytest.raises(ValueError):
        MachineSpec(midplanes_per_rack=3)
    with pytest.raises(ValueError):
        MachineSpec(io_nodes_per_nodecard=-1)


def test_machine_enumeration_counts():
    m = Machine(ANL_SPEC)
    assert len(m.midplane_locations) == 2
    assert len(m.nodecard_locations) == 32
    assert len(m.chip_locations) == 1024
    assert len(m.io_node_locations) == 32
    assert len(m.linkcard_locations) == 8
    assert len(m.service_card_locations) == 2


def test_all_locations_valid():
    m = Machine(SDSC_SPEC)
    for loc in m.chip_locations[:10] + m.io_node_locations[:10]:
        location_kind(loc)  # raises if invalid
    assert location_kind(m.linkcard_locations[0]) is LocationKind.LINKCARD


def test_locations_unique():
    m = Machine(ANL_SPEC)
    everything = (
        m.midplane_locations
        + m.nodecard_locations
        + m.chip_locations
        + m.io_node_locations
        + m.linkcard_locations
        + m.service_card_locations
    )
    assert len(everything) == len(set(everything))


def test_chip_navigation_consistent():
    m = Machine(ANL_SPEC)
    card = m.nodecard_locations[5]
    chips = m.chips_of_nodecard(card)
    assert len(chips) == 32
    assert all(c.startswith(card) for c in chips)
    assert set(chips) <= set(m.chip_locations)


def test_io_navigation_consistent():
    m = Machine(SDSC_SPEC)
    card = m.nodecard_locations[0]
    ios = m.io_nodes_of_nodecard(card)
    assert len(ios) == 4
    assert set(ios) <= set(m.io_node_locations)


def test_nodecards_of_midplane():
    m = Machine(ANL_SPEC)
    cards = m.nodecards_of_midplane(m.midplane_locations[1])
    assert len(cards) == 16
    assert set(cards) <= set(m.nodecard_locations)


def test_multi_rack_machine():
    m = Machine(MachineSpec(racks=4))
    assert len(m.midplane_locations) == 8
    assert len(m.chip_locations) == 4096
