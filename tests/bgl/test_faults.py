"""Tests for repro.bgl.faults (point-process primitives)."""

import numpy as np
import pytest

from repro.bgl.faults import (
    burst_process,
    chain_instances,
    merge_sorted_times,
    poisson_times,
    thin_times,
)
from repro.util.rng import as_generator


@pytest.fixture
def rng():
    return as_generator(42)


def test_poisson_times_sorted_in_range(rng):
    t = poisson_times(rng, rate=0.01, t0=100, t1=10_000)
    assert np.all(np.diff(t) >= 0)
    assert t.size == 0 or (t[0] >= 100 and t[-1] < 10_000)


def test_poisson_times_rate_controls_count(rng):
    span = 1_000_000
    t = poisson_times(rng, rate=0.001, t0=0, t1=span)
    assert t.size == pytest.approx(1000, rel=0.2)


def test_poisson_times_zero_rate(rng):
    assert poisson_times(rng, 0.0, 0, 1000).size == 0


def test_poisson_times_validation(rng):
    with pytest.raises(ValueError):
        poisson_times(rng, -1.0, 0, 10)
    with pytest.raises(ValueError):
        poisson_times(rng, 1.0, 10, 0)


def test_thin_times(rng):
    t = np.arange(10_000, dtype=float)
    kept = thin_times(rng, t, 0.25)
    assert kept.size == pytest.approx(2500, rel=0.15)
    assert thin_times(rng, t, 0.0).size == 0
    assert thin_times(rng, t, 1.0).size == t.size


def test_burst_process_structure(rng):
    times, gens = burst_process(
        rng, 0, 500_000, seed_rate=1e-4, p_follow=0.5,
        follow_lo=60, follow_hi=600,
    )
    assert np.all(np.diff(times) >= 0)
    assert times.shape == gens.shape
    assert (gens == 0).sum() > 0
    # Followers exist at roughly p_follow per event.
    followers = (gens > 0).sum()
    assert followers > 0


def test_burst_process_no_followers(rng):
    times, gens = burst_process(
        rng, 0, 100_000, seed_rate=1e-3, p_follow=0.0,
        follow_lo=10, follow_hi=100,
    )
    assert np.all(gens == 0)


def test_burst_process_generation_cap(rng):
    times, gens = burst_process(
        rng, 0, 1_000_000, seed_rate=1e-4, p_follow=0.99,
        follow_lo=1, follow_hi=2, max_generation=3,
    )
    assert gens.max() <= 3


def test_burst_process_validation(rng):
    with pytest.raises(ValueError):
        burst_process(rng, 0, 10, 1.0, 0.5, follow_lo=10, follow_hi=5)
    with pytest.raises(ValueError):
        burst_process(rng, 0, 10, 1.0, 1.5, follow_lo=1, follow_hi=2)


def test_chain_instances_confidence(rng):
    chains = chain_instances(
        rng, rate=1e-3, t0=0, t1=2_000_000, body_len=2,
        confidence=0.7, body_span=300, head_lag_lo=10, head_lag_hi=60,
    )
    assert len(chains) > 100
    with_head = sum(1 for c in chains if c.head_time is not None)
    assert with_head / len(chains) == pytest.approx(0.7, abs=0.08)
    for c in chains[:50]:
        assert len(c.body_times) == 2
        assert c.body_times == tuple(sorted(c.body_times))
        if c.head_time is not None:
            assert c.head_time > c.body_times[-1]


def test_chain_instances_validation(rng):
    with pytest.raises(ValueError):
        chain_instances(rng, 1.0, 0, 10, body_len=0, confidence=0.5,
                        body_span=10, head_lag_lo=1, head_lag_hi=2)
    with pytest.raises(ValueError):
        chain_instances(rng, 1.0, 0, 10, body_len=1, confidence=0.5,
                        body_span=10, head_lag_lo=5, head_lag_hi=5)


def test_merge_sorted_times():
    merged = merge_sorted_times(np.array([3.0, 1.0]), np.array([2.0]))
    assert list(merged) == [1.0, 2.0, 3.0]
    assert merge_sorted_times().size == 0
