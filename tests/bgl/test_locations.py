"""Tests for repro.bgl.locations (grammar, navigation)."""

import pytest

from repro.bgl.locations import (
    SYSTEM_LOCATION,
    LocationError,
    LocationKind,
    format_location,
    location_kind,
    parent_location,
    parse_location,
)

CASES = [
    ("R03", LocationKind.RACK),
    ("R03-M1", LocationKind.MIDPLANE),
    ("R03-M0-N07", LocationKind.NODECARD),
    ("R03-M0-N07-C21", LocationKind.COMPUTE_CHIP),
    ("R03-M0-N07-I02", LocationKind.IO_NODE),
    ("R03-M1-L2", LocationKind.LINKCARD),
    ("R03-M1-S", LocationKind.SERVICE_CARD),
    (SYSTEM_LOCATION, LocationKind.SYSTEM),
]


@pytest.mark.parametrize("code,kind", CASES)
def test_kind_detection(code, kind):
    assert location_kind(code) == kind


@pytest.mark.parametrize("code,kind", CASES)
def test_parse_format_roundtrip(code, kind):
    parts = parse_location(code)
    rebuilt = format_location(
        kind,
        rack=parts["rack"],
        midplane=parts["midplane"],
        nodecard=parts["nodecard"],
        chip=parts["chip"],
        ionode=parts["ionode"],
        linkcard=parts["linkcard"],
    )
    assert rebuilt == code


@pytest.mark.parametrize(
    "bad",
    ["", "R3", "R03-M2", "R03-M0-N7", "R03-M0-N07-C2", "X99", "R03-M0-N07-Q01",
     "r03", "R03-M0-"],
)
def test_invalid_codes_rejected(bad):
    with pytest.raises(LocationError):
        parse_location(bad)


def test_format_requires_components():
    with pytest.raises(LocationError, match="midplane"):
        format_location(LocationKind.NODECARD, rack=0)


def test_format_rejects_bad_midplane():
    with pytest.raises(LocationError):
        format_location(LocationKind.MIDPLANE, rack=0, midplane=2)


@pytest.mark.parametrize(
    "code,parent",
    [
        ("R03-M0-N07-C21", "R03-M0-N07"),
        ("R03-M0-N07-I01", "R03-M0-N07"),
        ("R03-M0-N07", "R03-M0"),
        ("R03-M1-L2", "R03-M1"),
        ("R03-M1-S", "R03-M1"),
        ("R03-M1", "R03"),
        ("R03", None),
        (SYSTEM_LOCATION, None),
    ],
)
def test_parent_navigation(code, parent):
    assert parent_location(code) == parent
