"""Tests for repro.bgl.jobs."""

import pytest

from repro.bgl.jobs import IDLE, Job, JobTrace, JobWorkloadModel
from repro.bgl.topology import ANL_SPEC, Machine


@pytest.fixture
def machine():
    return Machine(ANL_SPEC)


def test_job_validation():
    with pytest.raises(ValueError):
        Job(job_id=1, start=10, end=10, midplane_indices=(0,))
    with pytest.raises(ValueError):
        Job(job_id=1, start=0, end=10, midplane_indices=())


def test_job_duration():
    assert Job(1, 0, 100, (0,)).duration == 100


def test_trace_lookup(machine):
    jobs = [
        Job(1, 0, 100, (0,)),
        Job(2, 50, 150, (1,)),
        Job(3, 200, 300, (0, 1)),
    ]
    trace = JobTrace(machine, jobs)
    assert trace.job_at(0, 50) == 1
    assert trace.job_at(1, 50) == 2
    assert trace.job_at(0, 150) == IDLE
    assert trace.job_at(0, 250) == 3
    assert trace.job_at(1, 250) == 3
    # end is exclusive
    assert trace.job_at(0, 100) == IDLE


def test_trace_any_job_at(machine):
    trace = JobTrace(machine, [Job(1, 10, 20, (1,))])
    assert trace.any_job_at(15) == 1
    assert trace.any_job_at(5) == IDLE


def test_trace_rejects_overlap(machine):
    with pytest.raises(ValueError, match="overlaps"):
        JobTrace(machine, [Job(1, 0, 100, (0,)), Job(2, 50, 150, (0,))])


def test_trace_rejects_duplicate_ids(machine):
    with pytest.raises(ValueError, match="duplicate"):
        JobTrace(machine, [Job(1, 0, 10, (0,)), Job(1, 20, 30, (1,))])


def test_trace_rejects_bad_midplane(machine):
    with pytest.raises(ValueError, match="midplane"):
        JobTrace(machine, [Job(1, 0, 10, (5,))])


def test_partition_chips(machine):
    trace = JobTrace(machine, [Job(1, 0, 100, (0,))])
    chips = trace.partition_chips(1)
    assert len(chips) == 512  # one midplane = 16 cards x 32 chips
    cards = trace.partition_nodecards(1)
    assert len(cards) == 16


def test_utilization(machine):
    # One job on one of two midplanes for the whole interval -> 50 %.
    trace = JobTrace(machine, [Job(1, 0, 100, (0,))])
    assert trace.utilization(0, 100) == pytest.approx(0.5)


def test_workload_model_generates_valid_trace(machine):
    model = JobWorkloadModel(machine, mean_interarrival=600, mean_duration=3600)
    trace = model.generate(0, 30 * 86400, seed=1)
    assert len(trace) > 10
    # Every job fits the horizon.
    for job in trace.jobs:
        assert 0 <= job.start < job.end <= 30 * 86400
    # A reasonable utilization (not idle, not impossible).
    assert 0.05 < trace.utilization(0, 30 * 86400) <= 1.0


def test_workload_model_deterministic(machine):
    model = JobWorkloadModel(machine)
    a = model.generate(0, 10 * 86400, seed=5)
    b = model.generate(0, 10 * 86400, seed=5)
    assert [(j.start, j.end, j.midplane_indices) for j in a.jobs] == [
        (j.start, j.end, j.midplane_indices) for j in b.jobs
    ]


def test_workload_model_validation(machine):
    with pytest.raises(ValueError):
        JobWorkloadModel(machine, mean_interarrival=-1)
    with pytest.raises(ValueError):
        JobWorkloadModel(machine, p_full_machine=1.5)
    with pytest.raises(ValueError):
        JobWorkloadModel(machine).generate(100, 100)
