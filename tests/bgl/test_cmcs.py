"""Tests for repro.bgl.cmcs (duplication simulator)."""

import numpy as np
import pytest

from repro.bgl.cmcs import CmcsSimulator, DuplicationModel, GroundTruthEvent
from repro.bgl.jobs import Job, JobTrace
from repro.bgl.locations import SYSTEM_LOCATION
from repro.bgl.topology import ANL_SPEC, Machine
from repro.ras.events import NO_JOB
from repro.ras.fields import Severity
from repro.taxonomy.subcategories import by_name
from repro.util.rng import as_generator


@pytest.fixture
def machine():
    return Machine(ANL_SPEC)


@pytest.fixture
def trace(machine):
    return JobTrace(machine, [Job(1, 0, 1_000_000, (0, 1))])


def test_duplication_model_validation():
    with pytest.raises(ValueError):
        DuplicationModel(mean_reporting_chips=0)
    with pytest.raises(ValueError):
        DuplicationModel(max_repeats=0)
    with pytest.raises(ValueError):
        DuplicationModel(jitter_span=-1)


def test_sample_bounds():
    dup = DuplicationModel(mean_reporting_chips=8, max_reporting_chips=16,
                           mean_repeats=2, max_repeats=4)
    rng = as_generator(0)
    for _ in range(200):
        assert 1 <= dup.sample_chip_count(rng, 512) <= 16
        assert 1 <= dup.sample_repeats(rng) <= 4


def test_sample_chip_count_respects_availability():
    dup = DuplicationModel(mean_reporting_chips=100, max_reporting_chips=512)
    rng = as_generator(0)
    assert dup.sample_chip_count(rng, 3) <= 3


def test_expand_empty(machine):
    sim = CmcsSimulator(machine, seed=0, resolver=by_name)
    assert len(sim.expand([])) == 0


def test_expand_system_event_single_location(machine):
    sim = CmcsSimulator(machine, seed=0, resolver=by_name)
    store = sim.expand(
        [GroundTruthEvent(time=100, subcategory="BGLMasterRestartInfo")]
    )
    assert len(store) >= 1
    assert all(store.location_of(i) == SYSTEM_LOCATION for i in range(len(store)))


def test_expand_job_fatal_fans_out(machine, trace):
    dup = DuplicationModel(mean_reporting_chips=32, mean_repeats=1.0,
                           max_repeats=1)
    sim = CmcsSimulator(machine, job_trace=trace, duplication=dup, seed=1, resolver=by_name)
    store = sim.expand(
        [GroundTruthEvent(time=100, subcategory="loadProgramFailure", job_id=1)]
    )
    # Many chip locations report the same fault.
    locations = {store.location_of(i) for i in range(len(store))}
    assert len(locations) > 4
    # ... all with identical ENTRY_DATA and JOB_ID (spatial-duplicate shape).
    assert len({store.entry_of(i) for i in range(len(store))}) == 1
    assert set(store.jobs.tolist()) == {1}


def test_expand_duplicates_within_jitter(machine, trace):
    dup = DuplicationModel(jitter_span=60.0)
    sim = CmcsSimulator(machine, job_trace=trace, duplication=dup, seed=2, resolver=by_name)
    store = sim.expand(
        [GroundTruthEvent(time=500, subcategory="socketReadFailure", job_id=1)]
    )
    assert store.times.min() == 500  # first report at the true event time
    assert store.times.max() < 500 + 60


def test_expand_preserves_severity_and_facility(machine):
    sim = CmcsSimulator(machine, seed=3, resolver=by_name)
    sc = by_name("kernelPanicFailure")
    store = sim.expand(
        [GroundTruthEvent(time=10, subcategory="kernelPanicFailure")]
    )
    assert all(Severity(int(s)) == sc.severity for s in store.severities)
    assert all(int(f) == int(sc.facility) for f in store.facilities)


def test_expand_hardware_event_no_fanout(machine, trace):
    sim = CmcsSimulator(machine, job_trace=trace, seed=4, resolver=by_name)
    store = sim.expand(
        [GroundTruthEvent(time=10, subcategory="linkcardFailure", job_id=NO_JOB)]
    )
    assert len({store.location_of(i) for i in range(len(store))}) == 1


def test_expand_pinned_location(machine):
    sim = CmcsSimulator(machine, seed=5, resolver=by_name)
    store = sim.expand(
        [GroundTruthEvent(time=10, subcategory="fanSpeedWarning",
                          location="R00-M1-S")]
    )
    assert store.location_of(0) == "R00-M1-S"


def test_expand_is_time_sorted(machine, trace):
    sim = CmcsSimulator(machine, job_trace=trace, seed=6, resolver=by_name)
    events = [
        GroundTruthEvent(time=t, subcategory="timerInterruptInfo", job_id=1)
        for t in (5000, 100, 3000)
    ]
    store = sim.expand(events)
    assert store.is_time_sorted()


def test_expand_deterministic(machine, trace):
    events = [GroundTruthEvent(time=100, subcategory="dmaError", job_id=1)]
    a = CmcsSimulator(machine, job_trace=trace, seed=9, resolver=by_name).expand(events)
    b = CmcsSimulator(machine, job_trace=trace, seed=9, resolver=by_name).expand(events)
    assert len(a) == len(b)
    assert np.array_equal(a.times, b.times)
