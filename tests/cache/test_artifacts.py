"""Tests for repro.cache: artifact store, fingerprints, robustness."""

import json
import os

import pytest

from repro.cache import ArtifactCache, combine_tokens, store_fingerprint
from repro.obs import MetricsRegistry, use

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62
KEY_C = "cc" + "2" * 62


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


def test_roundtrip(cache):
    assert cache.get(KEY_A) is None
    cache.put(KEY_A, {"x": 1})
    assert cache.get(KEY_A) == {"x": 1}
    assert KEY_A in cache
    assert KEY_B not in cache
    assert len(cache) == 1


def test_sharded_layout(cache):
    path = cache.put(KEY_A, {})
    assert path == cache.directory / "aa" / f"{KEY_A}.json"
    assert path.exists()


def test_invalid_keys_rejected(cache):
    for bad in ("", "UPPER" + "0" * 59, "zz!!", "../escape"):
        with pytest.raises(ValueError, match="lowercase hex"):
            cache.path_for(bad)


def test_truncated_json_is_miss_not_crash(cache):
    cache.put(KEY_A, {"big": list(range(100))})
    path = cache.path_for(KEY_A)
    path.write_text(path.read_text()[:17])  # simulate a killed writer
    assert cache.get(KEY_A) is None
    assert cache.corrupt == 1
    # The corrupt file was discarded so the slot heals on the next put.
    assert not path.exists()
    cache.put(KEY_A, {"ok": True})
    assert cache.get(KEY_A) == {"ok": True}


def test_non_object_root_is_miss(cache):
    path = cache.path_for(KEY_A)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps([1, 2, 3]))
    assert cache.get(KEY_A) is None
    assert cache.corrupt == 1


def test_put_is_atomic_no_temp_left_behind(cache):
    cache.put(KEY_A, {"x": 1})
    leftovers = [
        p for p in cache.directory.rglob("*") if p.name.startswith(".tmp-")
    ]
    assert leftovers == []


def test_counters_and_stats(cache):
    registry = MetricsRegistry()
    with use(registry):
        cache.get(KEY_A)          # miss
        cache.put(KEY_A, {})
        cache.get(KEY_A)          # hit
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert registry.counters["cache.hits"] == 1
    assert registry.counters["cache.misses"] == 1
    assert registry.counters["cache.writes"] == 1


def test_prune_evicts_oldest_first(cache):
    for i, key in enumerate((KEY_A, KEY_B, KEY_C)):
        path = cache.put(key, {"i": i, "pad": "x" * 64})
        os.utime(path, (1000 + i, 1000 + i))
    size_all = cache.size_bytes()
    per_entry = size_all // 3
    removed = cache.prune(max_bytes=size_all - per_entry)
    assert removed == 1
    assert KEY_A not in cache  # oldest mtime went first
    assert KEY_B in cache and KEY_C in cache
    assert cache.prune(max_bytes=0) == 2
    assert len(cache) == 0
    with pytest.raises(ValueError):
        cache.prune(max_bytes=-1)


def test_clear(cache):
    cache.put(KEY_A, {})
    cache.put(KEY_B, {})
    assert cache.clear() == 2
    assert len(cache) == 0


def test_store_fingerprint_tracks_content(anl_events, sdsc_events):
    fp = store_fingerprint(anl_events)
    assert fp == store_fingerprint(anl_events)
    assert len(fp) == 64
    assert fp != store_fingerprint(sdsc_events)
    subset = anl_events.select(slice(0, len(anl_events) - 1))
    assert store_fingerprint(subset) != fp


def test_combine_tokens_is_order_insensitive():
    assert combine_tokens(a=1, b="x") == combine_tokens(b="x", a=1)
    assert combine_tokens(a=1) != combine_tokens(a=2)
    assert combine_tokens(a=1) != combine_tokens(b=1)


# ------------------------------------------------------ concurrent prune


def _key_for(i: int) -> str:
    import hashlib

    return hashlib.sha256(f"artifact-{i}".encode()).hexdigest()


def _concurrent_writer(root: str, count: int) -> int:
    cache = ArtifactCache(root)
    for i in range(count):
        cache.put(_key_for(i), {"i": i, "pad": "x" * 512})
    return count


def _concurrent_pruner(root: str, rounds: int) -> int:
    cache = ArtifactCache(root)
    removed = 0
    for _ in range(rounds):
        removed += cache.prune(max_bytes=4096)
    return removed


def test_prune_races_concurrent_writers_safely(tmp_path):
    """Pruning while another process writes must never corrupt or crash.

    The registry and the retrainer share one cache directory across
    processes (the lifecycle deployment story), so eviction races real
    writers: files may vanish between the stat and the unlink, and
    half-written temp files must never be visible to the pruner.
    """
    from concurrent.futures import ProcessPoolExecutor

    root = str(tmp_path / "cache")
    count, rounds = 200, 50
    with ProcessPoolExecutor(max_workers=2) as pool:
        writer = pool.submit(_concurrent_writer, root, count)
        pruner = pool.submit(_concurrent_pruner, root, rounds)
        assert writer.result(timeout=120) == count
        assert pruner.result(timeout=120) >= 0  # no exception is the point

    # Whatever survived is fully readable — no partial/corrupt artifacts.
    cache = ArtifactCache(root)
    survivors = 0
    for i in range(count):
        doc = cache.get(_key_for(i))
        assert doc is None or doc["i"] == i
        survivors += doc is not None
    assert len(cache) == survivors
    # The cache still functions after the race.
    cache.put(KEY_A, {"post": 1})
    assert cache.get(KEY_A) == {"post": 1}
    assert cache.prune(0) == survivors + 1  # everything evictable, evicted
    assert len(cache) == 0
