"""Tests for repro.synth.generator."""

import numpy as np
import pytest

from repro.synth.generator import LogGenerator, _largest_remainder
from repro.synth.profiles import anl_profile, sdsc_profile
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.subcategories import by_name


def test_largest_remainder_preserves_total():
    shares = np.array([1.4, 2.3, 0.3])
    out = _largest_remainder(shares)
    assert out.sum() == 4
    assert (out >= np.floor(shares)).all()


def test_largest_remainder_exact_integers():
    assert list(_largest_remainder(np.array([2.0, 3.0]))) == [2, 3]


def test_scale_validation():
    with pytest.raises(ValueError):
        LogGenerator(anl_profile(), scale=0.0)
    with pytest.raises(ValueError):
        LogGenerator(anl_profile(), scale=1.5)
    with pytest.raises(ValueError):
        LogGenerator(anl_profile(), noise_multiplier=-1)


def test_budgets_scale_linearly():
    gen = LogGenerator(anl_profile(), scale=0.5)
    budgets = gen.budgets()
    assert budgets[MainCategory.IOSTREAM] == round(1173 * 0.5)
    assert budgets[MainCategory.OTHER] == round(8 * 0.5)


def test_generated_fatal_counts_hit_budget(small_anl_log):
    budgets = LogGenerator(anl_profile(), scale=0.02).budgets()
    counts = small_anl_log.ground_truth_fatal_counts()
    for cat in MainCategory:
        assert counts[cat] == budgets[cat], cat


def test_ground_truth_within_horizon(small_anl_log):
    for gt in small_anl_log.ground_truth:
        assert small_anl_log.t0 <= gt.time < small_anl_log.t1


def test_ground_truth_sorted(small_anl_log):
    times = [gt.time for gt in small_anl_log.ground_truth]
    assert times == sorted(times)


def test_raw_store_larger_than_ground_truth(small_anl_log):
    """CMCS duplication inflates the record count substantially."""
    assert small_anl_log.n_raw > 5 * small_anl_log.n_unique


def test_determinism():
    a = LogGenerator(sdsc_profile(), scale=0.01, seed=99).generate()
    b = LogGenerator(sdsc_profile(), scale=0.01, seed=99).generate()
    assert a.n_unique == b.n_unique
    assert a.n_raw == b.n_raw
    assert np.array_equal(a.raw.times, b.raw.times)


def test_different_seeds_differ():
    a = LogGenerator(sdsc_profile(), scale=0.01, seed=1).generate()
    b = LogGenerator(sdsc_profile(), scale=0.01, seed=2).generate()
    assert a.n_unique != b.n_unique or not np.array_equal(a.raw.times, b.raw.times)


def test_noise_multiplier_zero_removes_background():
    log = LogGenerator(anl_profile(), scale=0.01, noise_multiplier=0.0,
                       seed=5).generate()
    noise_names = {s.subcategory for s in anl_profile().noise}
    # Only chain bodies may use body-noise subcategory names; pure-noise
    # subcategories (e.g. timerInterruptInfo) must be absent.
    chain_items = {
        item for t in anl_profile().chains for item in t.body
    }
    pure_noise = noise_names - chain_items
    present = {gt.subcategory for gt in log.ground_truth}
    assert not (pure_noise & present)


def test_job_attachment_for_chip_events(small_anl_log):
    """Compute/I-O level events carry jobs when the machine is busy."""
    from repro.bgl.locations import LocationKind

    chip_events = [
        gt for gt in small_anl_log.ground_truth
        if by_name(gt.subcategory).location_kind
        in (LocationKind.COMPUTE_CHIP, LocationKind.IO_NODE)
    ]
    with_job = sum(1 for gt in chip_events if gt.job_id != -1)
    assert with_job / len(chip_events) > 0.3


def test_no_jobs_for_hardware_events(small_anl_log):
    from repro.bgl.locations import LocationKind

    for gt in small_anl_log.ground_truth:
        kind = by_name(gt.subcategory).location_kind
        if kind in (LocationKind.LINKCARD, LocationKind.SERVICE_CARD,
                    LocationKind.SYSTEM):
            assert gt.job_id == -1


def test_burst_members_cluster_in_time(small_anl_log):
    """Network/iostream fatals show strong short-gap clustering."""
    netio_times = sorted(
        gt.time for gt in small_anl_log.ground_truth
        if by_name(gt.subcategory).is_fatal
        and by_name(gt.subcategory).category
        in (MainCategory.NETWORK, MainCategory.IOSTREAM)
    )
    gaps = np.diff(netio_times)
    # A sizeable share of gaps are within the storm lag band (<= 45 min).
    assert (gaps <= 45 * 60).mean() > 0.2


def test_chain_bodies_precede_heads(small_anl_log):
    """Most head-subcategory events have that chain's precursors before them.

    Not all: the same fatal subcategory can also be planted as a burst leaf
    or orphan, and some heads belong to sibling templates.
    """
    tpl = anl_profile().chains[0]
    heads = [gt.time for gt in small_anl_log.ground_truth
             if gt.subcategory == tpl.head]
    bodies = np.asarray(sorted(
        gt.time for gt in small_anl_log.ground_truth
        if gt.subcategory in tpl.body
    ))
    assert heads and bodies.size
    with_precursor = 0
    for h in heads:
        lo = np.searchsorted(bodies, h - tpl.max_extent)
        hi = np.searchsorted(bodies, h)
        with_precursor += int(hi > lo)
    assert with_precursor / len(heads) > 0.5


def test_diurnal_modulation_shapes_noise():
    """With strong amplitude, noise concentrates in the sinusoid's peak
    half-day; without it, the spread is uniform."""
    import dataclasses

    from repro.util.timeutil import DAY

    base = anl_profile()
    flat = dataclasses.replace(base, diurnal_amplitude=0.0)
    wavy = dataclasses.replace(base, diurnal_amplitude=0.9)

    def peak_share(profile):
        gen = LogGenerator(profile, scale=0.05, seed=31)
        times = np.array([
            gt.time for gt in gen.generate().ground_truth
            if not by_name(gt.subcategory).is_fatal
        ])
        phase = (times % DAY) / DAY
        # The sinusoid peaks in the first half of the UTC day.
        return float(((phase > 0.0) & (phase < 0.5)).mean())

    assert peak_share(flat) == pytest.approx(0.5, abs=0.05)
    assert peak_share(wavy) > 0.6


def test_diurnal_amplitude_validated():
    import dataclasses

    with pytest.raises(ValueError):
        dataclasses.replace(anl_profile(), diurnal_amplitude=1.5)
