"""Tests for repro.synth.chains."""

import pytest

from repro.synth.chains import (
    ChainTemplate,
    default_chain_templates,
    template_by_key,
)
from repro.taxonomy.subcategories import by_name


def test_default_templates_valid():
    templates = default_chain_templates()
    assert len(templates) == 25
    keys = [t.key for t in templates]
    assert len(keys) == len(set(keys))


def test_figure3_rules_transcribed():
    templates = default_chain_templates()
    nodemap = template_by_key(templates, "nodemap-file")
    assert nodemap.body == ("nodeMapFileError",)
    assert nodemap.head == "nodeMapCreateFailure"
    assert nodemap.confidence == pytest.approx(1.0)

    ddr = template_by_key(templates, "ddr-socket")
    assert ddr.body == ("ddrErrorCorrectionInfo", "maskInfo")
    assert ddr.head == "socketReadFailure"
    assert ddr.confidence == pytest.approx(0.698)

    linkcard = template_by_key(templates, "nodecard-linkcard-c")
    assert len(linkcard.body) == 4
    assert linkcard.head == "linkcardFailure"


def test_bodies_nonfatal_heads_fatal():
    for tpl in default_chain_templates():
        assert by_name(tpl.head).is_fatal
        for item in tpl.body:
            assert not by_name(item).is_fatal


def test_every_fatal_category_has_a_template():
    from repro.taxonomy.categories import MainCategory

    heads = {by_name(t.head).category for t in default_chain_templates()}
    assert heads == set(MainCategory)


def test_confidence_scale_clips():
    templates = default_chain_templates(confidence_scale=2.0)
    assert all(t.confidence <= 1.0 for t in templates)
    assert template_by_key(templates, "coredump-load").confidence == 1.0


def test_geometry_arguments():
    templates = default_chain_templates(body_span=999.0, head_lag=(5.0, 10.0))
    assert all(t.body_span == 999.0 for t in templates)
    assert all(t.head_lag == (5.0, 10.0) for t in templates)
    assert templates[0].max_extent == 999.0 + 10.0


def test_weight_overrides():
    templates = default_chain_templates(weight_overrides={"coredump-load": 7.5})
    assert template_by_key(templates, "coredump-load").weight == 7.5


def test_unknown_override_key():
    with pytest.raises(KeyError, match="unknown template keys"):
        default_chain_templates(weight_overrides={"nope": 1.0})


def test_template_by_key_missing():
    with pytest.raises(KeyError):
        template_by_key(default_chain_templates(), "missing")


def test_template_validation():
    with pytest.raises(ValueError):
        ChainTemplate(key="", body=("maskInfo",), head="cacheFailure",
                      confidence=0.5)
    with pytest.raises(ValueError):
        ChainTemplate(key="x", body=(), head="cacheFailure", confidence=0.5)
    with pytest.raises(ValueError, match="non-fatal"):
        ChainTemplate(key="x", body=("torusFailure",), head="cacheFailure",
                      confidence=0.5)
    with pytest.raises(ValueError, match="fatal"):
        ChainTemplate(key="x", body=("maskInfo",), head="maskInfo",
                      confidence=0.5)
    with pytest.raises(ValueError):
        ChainTemplate(key="x", body=("maskInfo",), head="cacheFailure",
                      confidence=0.5, head_lag=(10.0, 5.0))
