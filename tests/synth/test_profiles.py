"""Tests for repro.synth.profiles."""

import pytest

from repro.evaluation.paper import TABLE4, TABLE4_TOTALS
from repro.synth.profiles import (
    BurstConfig,
    NoiseSpec,
    SystemProfile,
    anl_profile,
    profile_by_name,
    sdsc_profile,
)
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.subcategories import by_name


def test_profiles_valid():
    anl = anl_profile()
    sdsc = sdsc_profile()
    assert anl.name == "ANL" and sdsc.name == "SDSC"


def test_fatal_budgets_match_paper_table4():
    for profile, name in ((anl_profile(), "ANL"), (sdsc_profile(), "SDSC")):
        for cat in MainCategory:
            assert profile.fatal_budget[cat] == TABLE4[name][cat]
        assert profile.total_fatal_budget == TABLE4_TOTALS[name]


def test_machine_specs_match_paper():
    assert anl_profile().machine.io_nodes == 32
    assert sdsc_profile().machine.io_nodes == 128


def test_log_spans_match_paper():
    # ANL: 2005-01-21 .. 2006-04-28 (462 days); SDSC: 2004-12-06 .. 2006-02-21.
    assert anl_profile().days == pytest.approx(462, abs=1)
    assert sdsc_profile().days == pytest.approx(442, abs=1)
    assert anl_profile().start_epoch == 1106265600


def test_sdsc_quieter_than_anl():
    anl_rate = sum(n.rate_per_day for n in anl_profile().noise)
    sdsc_rate = sum(n.rate_per_day for n in sdsc_profile().noise)
    assert sdsc_rate < anl_rate / 2


def test_sdsc_higher_chain_confidence():
    """The paper: SDSC yields more high-confidence rules than ANL."""
    anl_conf = {t.key: t.confidence for t in anl_profile().chains}
    sdsc_conf = {t.key: t.confidence for t in sdsc_profile().chains}
    assert all(sdsc_conf[k] >= anl_conf[k] for k in anl_conf)


def test_sdsc_wider_chain_geometry():
    """SDSC's best rule-generation window (25 min) exceeds ANL's (15 min)."""
    anl_span = anl_profile().chains[0].body_span
    sdsc_span = sdsc_profile().chains[0].body_span
    assert sdsc_span > anl_span


def test_noise_subcategories_exist_and_nonfatal():
    for profile in (anl_profile(), sdsc_profile()):
        for spec in profile.noise:
            assert not by_name(spec.subcategory).is_fatal


def test_noise_spec_validation():
    with pytest.raises(ValueError):
        NoiseSpec("torusFailure", 1.0)  # fatal
    with pytest.raises(ValueError):
        NoiseSpec("maskInfo", -1.0)


def test_burst_config_validation():
    with pytest.raises(ValueError):
        BurstConfig(mean_cluster_size=1.0)
    with pytest.raises(ValueError):
        BurstConfig(mean_cluster_size=4, lag=(100, 50))


def test_profile_fraction_validation():
    anl = anl_profile()
    with pytest.raises(ValueError, match="> 1"):
        SystemProfile(
            name="bad",
            machine=anl.machine,
            start_epoch=0,
            days=10,
            fatal_budget={MainCategory.NETWORK: 10},
            chain_fraction={MainCategory.NETWORK: 0.7},
            burst_fraction={MainCategory.NETWORK: 0.7},
            chains=anl.chains,
            burst=anl.burst,
            noise=(),
            duplication=anl.duplication,
        )


def test_profile_by_name():
    assert profile_by_name("anl").name == "ANL"
    assert profile_by_name("SDSC").name == "SDSC"
    with pytest.raises(KeyError):
        profile_by_name("LLNL")
