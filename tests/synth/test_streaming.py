"""stream_generate: segmented out-of-core generation equals in-memory concat."""

import numpy as np
import pytest

from repro.cache import store_fingerprint
from repro.ras.columnar import open_store
from repro.synth.generator import LogGenerator
from repro.synth.profiles import anl_profile
from repro.synth.streaming import stream_generate

SCALE = 0.005
SEED = 42


def _concat_reference(segments):
    """The same log built the slow way: generate, shift, concat in RAM."""
    children = np.random.SeedSequence(SEED).spawn(segments)
    merged = None
    last_time = None
    for child in children:
        gen = LogGenerator(anl_profile(), scale=SCALE, seed=child)
        raw = gen.generate().raw
        offset = 0 if last_time is None else last_time + 1 - gen.t0
        shifted = raw.time_shifted(offset)
        merged = shifted if merged is None else merged.concat(shifted)
        last_time = int(shifted.times[-1])
    return merged


def test_stream_generate_matches_concat_chain(tmp_path):
    summary = stream_generate(
        anl_profile(),
        tmp_path / "store",
        segments=3,
        scale=SCALE,
        seed=SEED,
        chunk_events=5_000,
    )
    store = open_store(summary.path)
    reference = _concat_reference(3)
    assert summary.segments == 3
    assert summary.rows == len(store) == len(reference)
    assert summary.t0 == int(reference.times[0])
    assert summary.t1 == int(reference.times[-1])
    assert summary.span_seconds == summary.t1 - summary.t0
    assert store_fingerprint(store) == store_fingerprint(reference)


def test_stream_generate_is_chunk_size_invariant(tmp_path):
    a = stream_generate(
        anl_profile(), tmp_path / "a", segments=2, scale=SCALE, seed=7,
        chunk_events=999,
    )
    b = stream_generate(
        anl_profile(), tmp_path / "b", segments=2, scale=SCALE, seed=7,
        chunk_events=100_000,
    )
    assert a.rows == b.rows
    assert store_fingerprint(open_store(a.path)) == store_fingerprint(
        open_store(b.path)
    )


def test_stream_generate_times_strictly_continue(tmp_path):
    summary = stream_generate(
        anl_profile(), tmp_path / "store", segments=2, scale=SCALE, seed=0
    )
    times = open_store(summary.path).times
    assert bool(np.all(np.diff(np.asarray(times)) >= 0))


def test_stream_generate_validates_inputs(tmp_path):
    with pytest.raises(ValueError):
        stream_generate(anl_profile(), tmp_path / "x", segments=0)
    with pytest.raises(ValueError):
        stream_generate(anl_profile(), tmp_path / "y", chunk_events=0)
