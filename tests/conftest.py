"""Shared fixtures.

Expensive artifacts (generated logs, preprocessed stores) are session-scoped:
the synthetic generator is deterministic given (profile, scale, seed), so all
tests observing the same small ANL log share one instance.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import ThreePhasePredictor
from repro.ras.events import RasEvent
from repro.ras.fields import Facility, Severity
from repro.ras.store import EventStore
from repro.synth.generator import GeneratedLog, LogGenerator
from repro.synth.profiles import anl_profile, sdsc_profile
from repro.taxonomy.classifier import TaxonomyClassifier

#: Scale used by most pipeline tests: ~55 fatal events, fast to generate.
SMALL_SCALE = 0.02


@pytest.fixture(scope="session")
def small_anl_log() -> GeneratedLog:
    """A small deterministic ANL-profile log (raw + ground truth)."""
    return LogGenerator(anl_profile(), scale=SMALL_SCALE, seed=7).generate()


@pytest.fixture(scope="session")
def small_sdsc_log() -> GeneratedLog:
    """A small deterministic SDSC-profile log."""
    return LogGenerator(sdsc_profile(), scale=SMALL_SCALE, seed=7).generate()


@pytest.fixture(scope="session")
def anl_events(small_anl_log) -> EventStore:
    """Phase-1 output (classified, compressed unique events) for the ANL log."""
    return ThreePhasePredictor().preprocess(small_anl_log.raw).events


@pytest.fixture(scope="session")
def sdsc_events(small_sdsc_log) -> EventStore:
    """Phase-1 output for the SDSC log."""
    return ThreePhasePredictor().preprocess(small_sdsc_log.raw).events


@pytest.fixture(scope="session")
def classifier() -> TaxonomyClassifier:
    return TaxonomyClassifier()


@pytest.fixture(scope="session")
def columnar_raw(tmp_path_factory, small_anl_log) -> EventStore:
    """The small ANL raw log reopened from an on-disk columnar store."""
    from repro.ras.columnar import open_store, write_store

    path = tmp_path_factory.mktemp("columnar") / "anl-store"
    write_store(small_anl_log.raw, path)
    return open_store(path)


def make_event(
    time: int = 1000,
    location: str = "R00-M0-N00-C00",
    facility: Facility = Facility.KERNEL,
    severity: Severity = Severity.INFO,
    entry: str = "timer interrupt rollover serviced",
    job_id: int = 17,
) -> RasEvent:
    """Handy single-event constructor for unit tests."""
    return RasEvent(
        time=time,
        location=location,
        facility=facility,
        severity=severity,
        entry_data=entry,
        job_id=job_id,
    )


@pytest.fixture
def tiny_store() -> EventStore:
    """Five handcrafted events: 3 INFO dupes, 1 FATAL, 1 WARNING."""
    events = [
        make_event(time=100, entry="alpha msg", severity=Severity.INFO),
        make_event(time=150, entry="alpha msg", severity=Severity.INFO),
        make_event(time=200, entry="alpha msg", severity=Severity.INFO),
        make_event(
            time=300,
            entry="load program failure: invalid or missing program image",
            severity=Severity.FATAL,
            facility=Facility.APP,
        ),
        make_event(
            time=420,
            entry="fan speed below nominal rpm",
            severity=Severity.WARNING,
            facility=Facility.MONITOR,
            location="R00-M0-S",
            job_id=-1,
        ),
    ]
    return EventStore.from_events(events)


@pytest.fixture(scope="session")
def fitted_predictors(anl_events) -> dict:
    """One fitted predictor per registered codec kind, keyed by kind.

    Built from declarative specs so the round-trip property test and the
    lifecycle registry tests exercise every codec the registry can snapshot
    — a codec added without a spec kind (or vice versa) fails loudly here.
    """
    from repro.core.serialize import registered_kinds
    from repro.evaluation.spec import PredictorSpec

    cut = int(len(anl_events) * 0.7)
    train = anl_events.select(slice(0, cut))
    out = {}
    for kind in registered_kinds():
        predictor = PredictorSpec.of(kind).build(seed=123)
        predictor.fit(train)
        out[kind] = predictor
    return out
