"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_fraction,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_sorted,
)


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_check_fraction_accepts(value):
    assert check_fraction(value, "x") == value


@pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
def test_check_fraction_rejects(value):
    with pytest.raises(ValueError, match="x"):
        check_fraction(value, "x")


def test_check_positive():
    assert check_positive(3, "n") == 3
    with pytest.raises(ValueError):
        check_positive(0, "n")


def test_check_nonnegative():
    assert check_nonnegative(0, "n") == 0
    with pytest.raises(ValueError):
        check_nonnegative(-1, "n")


@pytest.mark.parametrize("func, value", [
    (check_positive, 3),
    (check_nonnegative, 0),
    (lambda v, n: check_in_range(v, 0, 10, n), 7),
])
def test_checks_return_float_for_chaining(func, value):
    result = func(value, "n")
    assert isinstance(result, float)
    assert result == value


def test_check_in_range_accepts_bounds():
    assert check_in_range(-1.0, -1, 1, "rho") == -1.0
    assert check_in_range(1.0, -1, 1, "rho") == 1.0


@pytest.mark.parametrize("value", [-1.01, 1.01])
def test_check_in_range_rejects(value):
    with pytest.raises(ValueError, match=r"rho must be in \[-1, 1\]"):
        check_in_range(value, -1, 1, "rho")


def test_check_sorted_accepts_sorted_and_empty():
    check_sorted(np.array([1, 2, 2, 3]), "t")
    check_sorted(np.array([]), "t")


def test_check_sorted_rejects_unsorted():
    with pytest.raises(ValueError, match="sorted"):
        check_sorted(np.array([3, 1, 2]), "t")


def test_check_sorted_rejects_2d():
    with pytest.raises(ValueError, match="1-D"):
        check_sorted(np.zeros((2, 2)), "t")
