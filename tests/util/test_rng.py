"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import RngMixin, as_generator, spawn_child


def test_as_generator_from_int_deterministic():
    a = as_generator(123).random(5)
    b = as_generator(123).random(5)
    assert np.array_equal(a, b)


def test_as_generator_passthrough():
    g = np.random.default_rng(0)  # repro-lint: disable=RL001
    assert as_generator(g) is g


def test_as_generator_none_gives_generator():
    assert isinstance(as_generator(None), np.random.Generator)


def test_spawn_child_streams_differ():
    parent = as_generator(7)
    a, b = spawn_child(parent, streams=2)
    assert not np.array_equal(a.random(10), b.random(10))


def test_spawn_child_deterministic_from_seed():
    x = spawn_child(as_generator(9), streams=3)[2].random(4)
    y = spawn_child(as_generator(9), streams=3)[2].random(4)
    assert np.array_equal(x, y)


def test_spawn_child_rejects_zero_streams():
    with pytest.raises(ValueError):
        spawn_child(as_generator(0), streams=0)


def test_spawn_child_rejects_missing_seed_sequence():
    # Legacy seeding clears the bit generator's SeedSequence; spawning from
    # such a generator must fail loudly instead of raising AttributeError.
    mt = np.random.MT19937()
    mt._legacy_seeding(42)
    legacy = np.random.Generator(mt)
    with pytest.raises(TypeError, match="SeedSequence"):
        spawn_child(legacy, streams=2)


def test_rng_mixin_lazy_and_reseed():
    class Thing(RngMixin):
        pass

    t = Thing(seed=5)
    first = t.rng.random()
    t.reseed(5)
    assert t.rng.random() == first
