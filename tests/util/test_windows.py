"""Tests for repro.util.windows."""

import numpy as np
import pytest

from repro.util.windows import (
    count_in_windows,
    events_in_window,
    sliding_window_indices,
    window_slice,
)


@pytest.fixture
def times():
    return np.array([0.0, 10.0, 20.0, 30.0, 100.0])


def test_window_slice_half_open(times):  # repro-lint: sorted
    sl = window_slice(times, 10, 30)
    assert (sl.start, sl.stop) == (1, 3)  # 10 included, 30 excluded


def test_window_slice_empty(times):  # repro-lint: sorted
    sl = window_slice(times, 40, 90)
    assert sl.start == sl.stop


def test_events_in_window(times):  # repro-lint: sorted
    assert list(events_in_window(times, 0, 25)) == [0, 1, 2]


def test_count_in_windows_basic(times):
    # For each anchor, count events in [a+1, a+15).
    counts = count_in_windows(times, times, 1, 15)
    # anchor 0 -> {10}; 10 -> {20}; 20 -> {30}; 30 -> {}; 100 -> {}.
    assert list(counts) == [1, 1, 1, 0, 0]


def test_count_in_windows_excludes_self_with_positive_lo(times):
    counts = count_in_windows(times, times, 0.5, 5)
    assert counts.sum() == 0


def test_count_in_windows_requires_sorted():
    with pytest.raises(ValueError):
        count_in_windows(np.array([3.0, 1.0]), np.array([0.0]), 0, 1)


def test_sliding_window_indices(times):
    lo, idx = sliding_window_indices(times, width=15)
    # Earlier events strictly within 15s: event 1 (t=10) sees event 0.
    assert lo[1] == 0 and idx[1] == 1
    # Event 4 (t=100) sees nothing within 15s -> lo == own index.
    assert lo[4] == 4


def test_sliding_window_indices_empty():
    lo, idx = sliding_window_indices(np.array([]), width=10)
    assert lo.size == 0 and idx.size == 0
