"""Tests for repro.util.timeutil."""

import pytest

from repro.util.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    format_bgl_date,
    format_bgl_timestamp,
    format_epoch,
    parse_bgl_date,
    parse_bgl_timestamp,
)


def test_constants():
    assert MINUTE == 60
    assert HOUR == 60 * MINUTE
    assert DAY == 24 * HOUR


def test_parse_bgl_date_epoch():
    # 2005-01-21 00:00 UTC
    assert parse_bgl_date("2005.01.21") == 1106265600


def test_date_roundtrip():
    epoch = parse_bgl_date("2005.06.03")
    assert format_bgl_date(epoch) == "2005.06.03"


def test_parse_bgl_timestamp_truncates_microseconds():
    base = parse_bgl_timestamp("2005-06-03-15.42.50.675872")
    plain = parse_bgl_timestamp("2005-06-03-15.42.50.000000")
    assert base == plain


def test_parse_bgl_timestamp_without_fraction():
    assert parse_bgl_timestamp("2005-06-03-15.42.50") == parse_bgl_timestamp(
        "2005-06-03-15.42.50.999999"
    )


def test_timestamp_roundtrip():
    epoch = parse_bgl_timestamp("2006-04-28-23.59.59.000001")
    assert format_bgl_timestamp(epoch).startswith("2006-04-28-23.59.59")


def test_format_bgl_timestamp_microseconds():
    s = format_bgl_timestamp(0, microseconds=42)
    assert s.endswith(".000042")


def test_format_bgl_timestamp_bad_microseconds():
    with pytest.raises(ValueError):
        format_bgl_timestamp(0, microseconds=1_000_000)


def test_parse_bgl_timestamp_invalid():
    with pytest.raises(ValueError):
        parse_bgl_timestamp("garbage")


def test_format_epoch_readable():
    assert format_epoch(0) == "1970-01-01 00:00:00"
