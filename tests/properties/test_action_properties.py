"""Property tests for the action engine's determinism contracts.

Two properties the subsystem documents and the benchmarks lean on:

1. the engine is a deterministic fold — the same events and warnings give a
   byte-identical ledger digest, whether replayed twice or fed in chunks at
   any split point (the serve-replay vs daemon bit-identity gate);
2. the cost-aware composite never schedules an action whose expected value
   is not strictly positive.
"""

from hypothesis import given, settings, strategies as st

from repro.actions.cost import CostModel
from repro.actions.engine import ActionEngine
from repro.actions.jobview import StreamJobView
from repro.actions.policy import CostAwarePolicy, PolicyContext
from repro.predictors.base import FailureWarning
from repro.ras.fields import Severity
from repro.ras.store import EventStore
from repro.util.rng import as_generator
from tests.conftest import make_event

LOCATIONS = (
    "R00-M0-N00-C00",
    "R00-M0-N07-C01",
    "R00-M1-N00-C00",
    "R01-M0-N00-C00",
)


@st.composite
def scenarios(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    t = 0
    events = []
    for _ in range(n):
        t += draw(st.integers(min_value=1, max_value=1800))
        fatal = draw(st.booleans())
        events.append(
            make_event(
                time=t,
                location=draw(st.sampled_from(LOCATIONS)),
                job_id=draw(st.integers(min_value=-1, max_value=4)),
                severity=Severity.FATAL if fatal else Severity.INFO,
                entry="kernel panic: unrecoverable" if fatal else "info",
            )
        )
    warnings = []
    for i in range(draw(st.integers(min_value=0, max_value=5))):
        issued = draw(st.integers(min_value=0, max_value=t))
        start = issued + draw(st.integers(min_value=0, max_value=600))
        width = draw(st.integers(min_value=1, max_value=7200))
        warnings.append(
            FailureWarning(
                issued_at=issued,
                horizon_start=start,
                horizon_end=start + width,
                confidence=draw(
                    st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False)
                ),
                source="meta",
                detail=f"w{i}",
            )
        )
    return events, warnings


def _run(events, warnings, *, splits=()):
    engine = ActionEngine(CostAwarePolicy(), CostModel(), seed=11)
    bounds = [0, *splits, len(events)]
    for i, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        engine.observe_store(
            EventStore.from_events(events[lo:hi]),
            list(warnings) if i == 0 else [],
        )
    return engine.finalize()


@given(scenarios())
@settings(max_examples=50, deadline=None)
def test_replay_is_deterministic(scenario):
    events, warnings = scenario
    assert _run(events, warnings).digest() == _run(events, warnings).digest()


@given(scenarios(), st.data())
@settings(max_examples=50, deadline=None)
def test_chunked_feed_is_digest_identical(scenario, data):
    events, warnings = scenario
    split = data.draw(
        st.integers(min_value=0, max_value=len(events)), label="split"
    )
    assert (
        _run(events, warnings, splits=(split,)).digest()
        == _run(events, warnings).digest()
    )


@st.composite
def contexts(draw):
    view = StreamJobView()
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        view.observe(
            draw(st.integers(min_value=0, max_value=5000)),
            draw(st.sampled_from(LOCATIONS)),
            draw(st.integers(min_value=-1, max_value=3)),
        )
    now = draw(st.integers(min_value=0, max_value=10_000))
    start = now + draw(st.integers(min_value=0, max_value=600))
    warning = FailureWarning(
        issued_at=now,
        horizon_start=start,
        horizon_end=start + draw(st.integers(min_value=1, max_value=7200)),
        confidence=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        source="meta",
        detail="w",
    )
    return PolicyContext(
        warning=warning,
        now=now,
        view=view,
        cost=CostModel(),
        rng=as_generator(0),
        hot_midplane=draw(st.integers(min_value=-1, max_value=2)),
    )


@given(contexts())
@settings(max_examples=100, deadline=None)
def test_cost_aware_never_schedules_negative_expected_value(ctx):
    decided = CostAwarePolicy().decide(ctx)
    for action in decided:
        assert action.expected_value > 0.0
    # At most one remedy per job scope, one cordon per midplane scope.
    scopes = [
        ("mp", a.midplane) if a.kind == "quarantine" else ("job", a.job_id)
        for a in decided
    ]
    assert len(scopes) == len(set(scopes))
