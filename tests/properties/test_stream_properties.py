"""Property-based tests on the meta dispatch stream and warning semantics."""

from hypothesis import given, settings, strategies as st

from repro.meta.stacked import MetaStream
from repro.mining.rules import Rule, RuleSet
from repro.predictors.statistical import StatisticalPredictor
from repro.ras.store import EventStore
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import HOUR, MINUTE

# A small synthetic vocabulary: items 0..4 non-fatal, 5..6 fatal.
ITEM_NAMES = ["warnA", "warnB", "warnC", "infoD", "infoE", "fatalX", "fatalY"]
FATAL_ITEMS = frozenset({5, 6})

RULES = RuleSet(
    [
        Rule(body=frozenset({0, 1}), heads=frozenset({5}), confidence=0.9,
             support=0.1, support_count=5),
        Rule(body=frozenset({2}), heads=frozenset({6}), confidence=0.6,
             support=0.1, support_count=5),
    ],
    ITEM_NAMES,
    FATAL_ITEMS,
)


def _stat() -> StatisticalPredictor:
    sp = StatisticalPredictor(window=HOUR, lead=5 * MINUTE)
    sp.follow_probability = {MainCategory.NETWORK: 0.55}
    sp.trigger_categories = (MainCategory.NETWORK,)
    sp._fitted = True
    return sp


@st.composite
def event_streams(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    t = 0
    out = []
    for _ in range(n):
        t += draw(st.integers(min_value=0, max_value=20 * MINUTE))
        item = draw(st.integers(min_value=0, max_value=6))
        out.append((t, item))
    return out


def _category(item: int) -> MainCategory:
    return MainCategory.NETWORK if item in FATAL_ITEMS else MainCategory.KERNEL


@given(event_streams())
@settings(max_examples=80, deadline=None)
def test_stream_warnings_well_formed(stream):
    ms = MetaStream(RULES, _stat(), prediction_window=30 * MINUTE)
    prev_issue = None
    for t, item in stream:
        for w in ms.step(t, item, item in FATAL_ITEMS, _category(item)):
            assert w.issued_at == t
            assert w.horizon_start > w.issued_at
            assert w.horizon_end >= w.horizon_start
            assert 0.0 <= w.confidence <= 1.0
            if prev_issue is not None:
                assert w.issued_at >= prev_issue
            prev_issue = w.issued_at


@given(event_streams())
@settings(max_examples=80, deadline=None)
def test_stream_dedup_invariant(stream):
    """No two warnings with the same detail overlap in issue-vs-horizon."""
    ms = MetaStream(RULES, _stat(), prediction_window=30 * MINUTE)
    active: dict[str, int] = {}
    for t, item in stream:
        for w in ms.step(t, item, item in FATAL_ITEMS, _category(item)):
            end = active.get(w.detail)
            assert end is None or w.issued_at > end, (
                "re-issued while active: " + w.detail
            )
            active[w.detail] = w.horizon_end


@given(event_streams())
@settings(max_examples=60, deadline=None)
def test_stream_counts_match_emissions(stream):
    ms = MetaStream(RULES, _stat(), prediction_window=30 * MINUTE)
    emitted = 0
    for t, item in stream:
        emitted += len(ms.step(t, item, item in FATAL_ITEMS, _category(item)))
    assert sum(ms.dispatch_counts.values()) == emitted


@given(event_streams(), st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_stream_prefix_consistency(stream, cut_div):
    """Feeding a prefix then the rest equals feeding everything (no hidden
    dependence on call boundaries)."""
    def run(chunks):
        ms = MetaStream(RULES, _stat(), prediction_window=30 * MINUTE)
        out = []
        for chunk in chunks:
            for t, item in chunk:
                out.extend(
                    ms.step(t, item, item in FATAL_ITEMS, _category(item))
                )
        return [(w.issued_at, w.detail) for w in out]

    cut = len(stream) // cut_div
    assert run([stream]) == run([stream[:cut], stream[cut:]])


@given(event_streams())
@settings(max_examples=40, deadline=None)
def test_online_detector_matches_batch_on_random_streams(stream):
    """OnlineDetector over RasEvents == MetaLearner.predict over the store,
    for arbitrary event mixes (not just generated logs)."""
    from repro.meta.stacked import MetaLearner
    from repro.online.detector import OnlineDetector
    from repro.predictors.rulebased import RuleBasedPredictor
    from repro.ras.events import RasEvent
    from repro.taxonomy.subcategories import CATALOG

    # Map synthetic items onto real catalog subcategories.
    nonfatal = [sc for sc in CATALOG if not sc.is_fatal][:5]
    fatal = [sc for sc in CATALOG if sc.is_fatal][:2]
    mapping = nonfatal + fatal

    events = []
    for t, item in stream:
        sc = mapping[item]
        events.append(
            RasEvent(
                time=t + 1,
                location="R00-M0-N00-C00",
                facility=sc.facility,
                severity=sc.severity,
                entry_data=sc.templates[0],
            )
        )
    store = TaxonomyClassifier().classify_store(EventStore.from_events(events))

    meta = MetaLearner(prediction_window=30 * MINUTE)
    meta.statistical = _stat()
    rb = RuleBasedPredictor(prediction_window=30 * MINUTE)
    rb.ruleset = RuleSet(
        [], list(store.subcat_table), frozenset()
    )
    rb._fitted = True
    meta.rulebased = rb
    meta._fitted = True

    batch = meta.predict(store)
    det = OnlineDetector(meta)
    online = []
    for ev in store:
        online.extend(det.feed(ev))
    assert [(w.issued_at, w.detail) for w in batch] == [
        (w.issued_at, w.detail) for w in online
    ]
