"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.bgl.locations import LocationKind, format_location, parse_location
from repro.evaluation.crossval import fold_index_ranges
from repro.evaluation.matching import match_warnings
from repro.mining.apriori import apriori
from repro.mining.fptree import fpgrowth
from repro.mining.incremental import IncrementalMiner
from repro.util.rng import as_generator
from repro.predictors.base import FailureWarning, dedup_warnings
from repro.preprocess.compression import spatial_compress, temporal_compress
from repro.ras.events import RasEvent
from repro.ras.fields import Facility, Severity
from repro.ras.logfile import format_event, parse_line
from repro.ras.store import EventStore

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #

locations = st.sampled_from(
    ["R00-M0-N00-C00", "R00-M0-N01-C05", "R00-M1-N02-I00", "R00-M1-L2",
     "R00-M0-S", "R01", "SYSTEM"]
)

entries = st.sampled_from(
    ["alpha event text", "beta event text", "gamma event text",
     "kernel panic: unrecoverable condition detected"]
)


@st.composite
def ras_events(draw):
    return RasEvent(
        time=draw(st.integers(min_value=0, max_value=100_000)),
        location=draw(locations),
        facility=draw(st.sampled_from(list(Facility))),
        severity=draw(st.sampled_from(list(Severity))),
        entry_data=draw(entries),
        job_id=draw(st.integers(min_value=-1, max_value=3)),
    )


event_lists = st.lists(ras_events(), min_size=0, max_size=40)

transactions = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=8), max_size=6),
    min_size=0,
    max_size=30,
)

# ---------------------------------------------------------------------- #
# Miner equivalence and monotonicity
# ---------------------------------------------------------------------- #


@given(transactions, st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_apriori_fpgrowth_equivalent(db, min_support):
    assert apriori(db, min_support) == fpgrowth(db, min_support)


def test_apriori_fpgrowth_equivalent_seeded_grid():
    """Deterministic sweep over database sizes and supports.

    Complements the hypothesis property above with a reproducible grid that
    pins the edge cases the miners treat specially: the empty window, the
    single-transaction window, and a ladder of sizes at each support.
    """
    supports = [0.02, 0.05, 0.1, 0.25, 0.5, 1.0]
    for support in supports:
        assert apriori([], support) == fpgrowth([], support) == {}
        single = [frozenset({3, 5})]
        assert apriori(single, support) == fpgrowth(single, support)
    rng = as_generator(2026)
    for size in (1, 2, 5, 13, 34, 89):
        n_items = int(rng.integers(3, 14))
        db = [
            frozenset(
                int(x)
                for x in rng.choice(
                    n_items,
                    size=int(rng.integers(0, n_items)),
                    replace=False,
                )
            )
            for _ in range(size)
        ]
        for support in supports:
            assert apriori(db, support) == fpgrowth(db, support), (size, support)


@given(transactions, st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_incremental_miner_equivalent_to_scratch(db, min_support):
    """One-shot add: the maintained miner is exactly fpgrowth."""
    miner = IncrementalMiner()
    miner.add(db)
    assert miner.itemsets(min_support) == fpgrowth(db, min_support)


@given(
    transactions,
    transactions,
    st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_incremental_add_evict_restores_scratch(base, extra, min_support):
    """Adding then evicting a batch lands back on the base window's result."""
    miner = IncrementalMiner()
    miner.add(base)
    miner.add(extra)
    assert miner.itemsets(min_support) == fpgrowth(base + extra, min_support)
    miner.evict(extra)
    assert miner.itemsets(min_support) == fpgrowth(base, min_support)


@given(transactions)
@settings(max_examples=40, deadline=None)
def test_apriori_support_monotone_in_threshold(db):
    low = apriori(db, 0.1)
    high = apriori(db, 0.5)
    assert set(high) <= set(low)


@given(transactions)
@settings(max_examples=40, deadline=None)
def test_apriori_downward_closure(db):
    result = apriori(db, 0.15)
    for itemset, count in result.items():
        for item in itemset:
            sub = itemset - {item}
            if sub:
                assert result[sub] >= count


# ---------------------------------------------------------------------- #
# Compression invariants
# ---------------------------------------------------------------------- #


@given(event_lists, st.sampled_from(["temporal", "spatial"]))
@settings(max_examples=60, deadline=None)
def test_compression_idempotent(events, which):
    store = EventStore.from_events(events)
    fn = temporal_compress if which == "temporal" else spatial_compress
    once, _ = fn(store)
    twice, stats = fn(once)
    assert len(twice) == len(once)
    assert stats.removed == 0


@given(event_lists)
@settings(max_examples=60, deadline=None)
def test_compression_never_grows_and_stays_sorted(events):
    store = EventStore.from_events(events)
    out, stats = temporal_compress(store)
    assert len(out) <= len(store)
    assert out.is_time_sorted()
    assert stats.input_records == len(store)
    assert stats.output_records == len(out)


@given(event_lists)
@settings(max_examples=60, deadline=None)
def test_compression_order_invariant(events):
    """Input record order must not change the compressed output."""
    a = EventStore.from_events(events)
    b = EventStore.from_events(list(reversed(events)))
    out_a, _ = temporal_compress(a)
    out_b, _ = temporal_compress(b)
    assert len(out_a) == len(out_b)
    assert list(out_a.times) == list(out_b.times)


@given(event_lists)
@settings(max_examples=60, deadline=None)
def test_compression_preserves_max_severity(events):
    """Compression must never lose the most severe record entirely."""
    store = EventStore.from_events(events)
    if len(store) == 0:
        return
    out, _ = temporal_compress(store)
    assert out.severities.max() == store.severities.max()


# ---------------------------------------------------------------------- #
# Location grammar round-trip
# ---------------------------------------------------------------------- #


@given(
    st.sampled_from(list(LocationKind)),
    st.integers(min_value=0, max_value=99),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=99),
    st.integers(min_value=0, max_value=99),
    st.integers(min_value=0, max_value=9),
)
@settings(max_examples=120, deadline=None)
def test_location_roundtrip(kind, rack, midplane, nodecard, unit, linkcard):
    code = format_location(
        kind, rack=rack, midplane=midplane, nodecard=nodecard,
        chip=unit, ionode=unit, linkcard=linkcard,
    )
    parts = parse_location(code)
    assert parts["kind"] == kind
    rebuilt = format_location(
        kind,
        rack=parts["rack"],
        midplane=parts["midplane"],
        nodecard=parts["nodecard"],
        chip=parts["chip"],
        ionode=parts["ionode"],
        linkcard=parts["linkcard"],
    )
    assert rebuilt == code


# ---------------------------------------------------------------------- #
# Log line round-trip
# ---------------------------------------------------------------------- #


@given(ras_events())
@settings(max_examples=100, deadline=None)
def test_logline_roundtrip(event):
    assert parse_line(format_event(event)) == event


# ---------------------------------------------------------------------- #
# Warning/metric invariants
# ---------------------------------------------------------------------- #


@st.composite
def warnings_strategy(draw):
    issued = draw(st.integers(min_value=0, max_value=10_000))
    start = issued + draw(st.integers(min_value=0, max_value=100))
    end = start + draw(st.integers(min_value=0, max_value=5_000))
    return FailureWarning(
        issued_at=issued, horizon_start=start, horizon_end=end,
        confidence=draw(st.floats(min_value=0, max_value=1)),
        source=draw(st.sampled_from(["a", "b"])),
        detail=draw(st.sampled_from(["x", "y"])),
    )


@given(st.lists(warnings_strategy(), max_size=30), event_lists)
@settings(max_examples=60, deadline=None)
def test_matching_bounds(warnings, events):
    store = EventStore.from_events(events)
    res = match_warnings(warnings, store)
    m = res.metrics
    assert 0 <= m.tp_warnings <= m.n_warnings == len(warnings)
    assert 0 <= m.covered_fatals <= m.n_fatals == len(store.fatal_events())
    assert 0.0 <= m.precision <= 1.0
    assert 0.0 <= m.recall <= 1.0
    assert 0.0 <= m.f1 <= 1.0


@given(st.lists(warnings_strategy(), max_size=30))
@settings(max_examples=60, deadline=None)
def test_dedup_is_subset_and_idempotent(warnings):
    kept = dedup_warnings(warnings)
    assert len(kept) <= len(warnings)
    assert dedup_warnings(kept) == kept
    # No two kept warnings of the same key overlap actively.
    by_key = {}
    for w in kept:
        key = (w.source, w.detail)
        if key in by_key:
            assert w.issued_at > by_key[key]
        by_key[key] = w.horizon_end


# ---------------------------------------------------------------------- #
# Fold partition
# ---------------------------------------------------------------------- #


@given(st.integers(min_value=2, max_value=500), st.integers(min_value=2, max_value=20))
@settings(max_examples=80, deadline=None)
def test_fold_ranges_partition(n, k):
    if n < k:
        return
    ranges = fold_index_ranges(n, k)
    covered = [i for s, e in ranges for i in range(s, e)]
    assert covered == list(range(n))
    sizes = [e - s for s, e in ranges]
    assert max(sizes) - min(sizes) <= 1
