"""Round-trip properties of the predictor codec registry.

The lifecycle registry's content addressing hashes the canonical JSON of
``model_to_dict(predictor)``, so its whole identity scheme rests on one
property: **encode → decode → encode is byte-identical** for every codec in
:func:`repro.core.serialize.registered_kinds`.  These tests pin that
property codec by codec — a codec whose decode loses or reorders state
would silently fork snapshot ids.
"""

from __future__ import annotations

import json

import pytest

from repro.core.serialize import (
    learned_state_to_dict,
    model_from_dict,
    model_to_dict,
    registered_kinds,
)


def canonical(doc: dict) -> str:
    """The byte form the registry hashes (sorted keys, no whitespace)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@pytest.mark.parametrize("kind", sorted(registered_kinds()))
def test_encode_decode_encode_is_byte_identical(kind, fitted_predictors):
    predictor = fitted_predictors[kind]
    doc = model_to_dict(predictor)
    assert doc["kind"] == kind
    rebuilt = model_from_dict(json.loads(canonical(doc)))
    assert type(rebuilt) is type(predictor)
    assert canonical(model_to_dict(rebuilt)) == canonical(doc)


@pytest.mark.parametrize("kind", sorted(registered_kinds()))
def test_decoded_predictor_predicts_identically(kind, fitted_predictors, anl_events):
    predictor = fitted_predictors[kind]
    rebuilt = model_from_dict(model_to_dict(predictor))
    cut = int(len(anl_events) * 0.7)
    test = anl_events.select(slice(cut, len(anl_events)))
    key = lambda ws: [  # noqa: E731
        (w.issued_at, w.horizon_start, w.horizon_end, w.confidence, w.detail)
        for w in ws
    ]
    assert key(rebuilt.predict(test)) == key(predictor.predict(test))


@pytest.mark.parametrize("kind", sorted(registered_kinds()))
def test_learned_state_roundtrip_is_stable(kind, fitted_predictors):
    """State documents (the worker-transport payload) are stable too."""
    predictor = fitted_predictors[kind]
    state = learned_state_to_dict(predictor)
    rebuilt = model_from_dict(model_to_dict(predictor))
    assert canonical(learned_state_to_dict(rebuilt)) == canonical(state)


def test_every_codec_kind_is_spec_buildable(fitted_predictors):
    """The fixture itself asserts the codec and spec registries agree."""
    assert set(fitted_predictors) == set(registered_kinds())
